// Package server implements treecached, the crash-tolerant serving
// daemon around internal/engine: the paper's online tree-caching
// algorithm behind a compact length-prefixed binary protocol
// (internal/wire) over TCP, plus an HTTP admin plane (/metrics,
// /healthz, /readyz).
//
// Robustness model, end to end:
//
//   - Wire-level backpressure: a full shard queue never blocks a
//     client silently or drops its connection. With a request deadline
//     the submit waits at most that budget (SubmitCtx); without one it
//     is non-blocking (TrySubmit). Either way the shed request is
//     answered with an explicit TRetry carrying a retry-after hint.
//   - Per-tenant quotas: a token bucket per tenant (QuotaConfig) sheds
//     load before it reaches the dispatcher, so one hot tenant's
//     overrun turns into its own TRetry stream instead of fleet-wide
//     queueing. Quota consumed by a batch that backpressure then shed
//     is refunded.
//   - Deadlines propagate: clients send their remaining budget in the
//     frame (relative nanoseconds, no clock sync), the daemon turns it
//     into a context for SubmitCtx.
//   - Idempotent retries: each tenant's batches carry a gapless
//     sequence number; the daemon acknowledges duplicates of already-
//     applied batches without re-serving them, which makes client
//     retransmission after a lost ack — or a daemon restart — safe.
//   - Durable acks (WALDir set): every admitted frame is appended to
//     the tenant's write-ahead log and the Ack is withheld until a
//     group-commit fsync covers the record, so an acknowledged batch
//     survives kill -9, OOM-kill or power loss. Recovery restores the
//     last checkpoint and replays the WAL tail through the sequence
//     table: duplicates are dropped, costs are committed exactly once,
//     and a torn tail record truncates the log instead of failing
//     startup. Checkpoints supersede the log prefix and truncate it,
//     bounding recovery time. Without WALDir the ack remains an
//     in-memory promise and only checkpoints survive a hard crash.
//   - Malformed or stalled clients cannot wedge a handler: every
//     connection read and write carries a deadline, and frames beyond
//     the payload limit are rejected before allocation.
//   - Graceful drain: Shutdown stops accepting, closes client
//     connections, drains every shard, checkpoints all shards plus the
//     sequence table to the state directory at one consistency point,
//     then closes the engine. New restores from that directory, so a
//     SIGTERM-restart cycle loses nothing.
//
// Tenants map 1:1 onto engine shards (tenant i is served by shard i's
// instance), the same convention as engine.SubmitMulti.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/snapshot"
	"repro/internal/tree"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Algo is the algorithm surface a shard of the daemon runs: the
// engine's core interface plus batched serving, topology mutation and
// checkpointing. snapshot.Checkpointed over a core.MutableTC satisfies
// it, as does faultinject.Algo wrapping one (the chaos e2e suite).
type Algo interface {
	engine.Algorithm
	engine.BatchServer
	engine.TopologyServer
	engine.Checkpointer
}

// Config parameterises a Server.
type Config struct {
	// Addr is the TCP listen address for the wire protocol, e.g.
	// "127.0.0.1:7600" (":0" picks a free port; see Addr()).
	Addr string
	// AdminAddr is the HTTP admin plane address serving /metrics,
	// /healthz and /readyz; empty disables the admin plane. The admin
	// plane comes up before recovery starts, answering /readyz with
	// 503 until checkpoint restore and WAL replay complete.
	AdminAddr string
	// StateDir is the checkpoint directory. When set, Shutdown (and
	// the TSnapshot frame) persist every shard snapshot plus the
	// sequence table there as one atomic file, and Start restores from
	// it. Empty disables checkpointing.
	StateDir string
	// WALDir enables the durable write-ahead log: one log per shard,
	// every admitted frame appended and fsynced (group commit) before
	// its ack. Usually the same directory as StateDir. Empty disables
	// the WAL — acks then promise only in-memory application.
	WALDir string
	// FsyncInterval is the WAL group-commit window: the first frame
	// after an idle period waits this long so one fsync covers every
	// frame admitted in the window. Zero syncs immediately (still
	// coalescing frames that race one fsync's duration). Larger
	// windows trade ack latency for fewer fsyncs.
	FsyncInterval time.Duration
	// CheckpointInterval, when positive with a StateDir, checkpoints
	// periodically in the background, truncating the WALs and bounding
	// both log growth and recovery replay time.
	CheckpointInterval time.Duration
	// Trees are the per-tenant rule trees; tenant i is served by a
	// fresh (or restored) dynamic TC instance over Trees[i].
	Trees []*tree.Tree
	// Alpha and Capacity configure every shard's algorithm.
	Alpha    int64
	Capacity int
	// QueueLen, Parallelism and CheckpointEvery tune the wrapped
	// engine; see engine.Config.
	QueueLen        int
	Parallelism     int
	CheckpointEvery int
	// Quota is the per-tenant admission quota; zero Rate disables.
	Quota QuotaConfig
	// ReadTimeout bounds how long a connection may sit between frames
	// (and mid-frame) before the daemon hangs up: a stalled or
	// byte-dribbling client costs one connection, not a worker.
	// Default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply write. Default 10s.
	WriteTimeout time.Duration
	// MaxFrame caps a frame's payload size in bytes (default
	// wire.DefaultMaxPayload); larger length prefixes are rejected
	// before any allocation and the connection is closed.
	MaxFrame int
	// Wrap, when non-nil, wraps each shard's algorithm before the
	// engine sees it — the fault-injection hook the chaos e2e suite
	// uses. The wrapper must preserve Algo semantics.
	Wrap func(shard int, algo Algo) Algo
}

// tenantState serializes one tenant's admission path: the sequence
// check, quota, WAL append and submit happen under mu, so a tenant's
// batches enter the shard queue — and its WAL — in sequence order even
// when several connections carry the same tenant.
type tenantState struct {
	mu      sync.Mutex
	lastSeq uint64
}

// WAL record kinds: the first byte of every record, ahead of the raw
// wire frame payload, so replay reuses the wire codecs.
const (
	walRecServe = 1
	walRecTopo  = 2
)

// Server is the treecached daemon. Build with New, start with Start
// (which performs recovery), stop with Shutdown.
type Server struct {
	cfg   Config
	eng   atomic.Pointer[engine.Engine]
	algos []Algo
	// base is each shard's ledger and round count as of the end of
	// recovery (checkpoint restore plus WAL replay; zero on fresh
	// shards): the engine's published per-batch stats only cover work
	// since boot, so stats replies merge the two into restart-spanning
	// cumulative totals.
	base       []cache.Ledger
	baseRounds []int64
	tenants    []*tenantState
	quo        *quotas

	// wals is nil without a WALDir; otherwise one log per shard.
	// replayed counts the records recovery applied per shard.
	wals     []*wal.Log
	replayed []int64
	// ckpts counts durably committed checkpoints (atomic).
	ckpts atomic.Int64

	ln      net.Listener
	admin   *http.Server
	adminLn net.Listener

	// snapMu orders the world for checkpoints: every admission holds
	// the read side end to end (sequence check, WAL append, submit,
	// fsync wait), a checkpoint takes the write side and then drains,
	// so shard instances are quiescent and the WAL has no in-flight
	// appends when it is truncated. Lock order: snapMu before
	// tenantState.mu, always.
	snapMu sync.RWMutex

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	ready    atomic.Bool
	draining atomic.Bool
	closed   atomic.Bool
	wg       sync.WaitGroup
	ckptStop chan struct{}
	ckptDone chan struct{}
	shutOnce sync.Once
	shutErr  error
	killOnce sync.Once
}

// Retry hints, nanoseconds: how long a client should back off when
// shed for a reason other than quota (which computes the exact token
// wait).
const (
	overloadRetryNs = int64(5 * time.Millisecond)
	drainRetryNs    = int64(50 * time.Millisecond)
)

// New validates the configuration and builds the daemon shell. All
// recovery work (checkpoint restore, WAL replay, engine construction)
// happens in Start, so a crashed daemon's operator sees recovery time
// attributed to startup, with the admin plane already answering.
func New(cfg Config) (*Server, error) {
	if len(cfg.Trees) == 0 {
		return nil, errors.New("server: no trees configured")
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxPayload
	}
	return &Server{
		cfg:        cfg,
		algos:      make([]Algo, len(cfg.Trees)),
		base:       make([]cache.Ledger, len(cfg.Trees)),
		baseRounds: make([]int64, len(cfg.Trees)),
		tenants:    make([]*tenantState, len(cfg.Trees)),
		replayed:   make([]int64, len(cfg.Trees)),
		quo:        newQuotas(cfg.Quota, len(cfg.Trees)),
		conns:      make(map[net.Conn]struct{}),
	}, nil
}

// engine returns the wrapped engine, or nil before recovery completes.
func (s *Server) engine() *engine.Engine { return s.eng.Load() }

// Start brings the daemon up: admin plane first (so /readyz reports
// 503 while recovering), then checkpoint restore and WAL replay, then
// the wire listener; readiness flips to 200 only once recovery is
// complete and the daemon is accepting.
func (s *Server) Start() error {
	if s.cfg.AdminAddr != "" {
		adminLn, err := net.Listen("tcp", s.cfg.AdminAddr)
		if err != nil {
			return err
		}
		s.adminLn = adminLn
		s.admin = &http.Server{Handler: s.adminMux()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// ErrServerClosed is the normal Shutdown path.
			_ = s.admin.Serve(adminLn)
		}()
	}
	if err := s.restore(); err != nil {
		if s.admin != nil {
			s.admin.Close()
		}
		return err
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		if s.admin != nil {
			s.admin.Close()
		}
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	if s.cfg.StateDir != "" && s.cfg.CheckpointInterval > 0 {
		s.ckptStop = make(chan struct{})
		s.ckptDone = make(chan struct{})
		go s.checkpointLoop()
	}
	s.engine().SetReady(true)
	s.ready.Store(true)
	return nil
}

// restore rebuilds every shard from the last durable state: the
// checkpoint file (shard snapshots + sequence table at one consistency
// point), then each shard's WAL tail replayed through the sequence
// table — records at or below the checkpointed sequence are dropped as
// duplicates, the rest applied exactly once, in order. The replay runs
// on the raw instances before the engine exists: engine workers
// capture a supervision snapshot at construction, which must already
// include the replayed state.
func (s *Server) restore() error {
	shards := len(s.cfg.Trees)
	blobs := make([][]byte, shards)
	seqs := make([]uint64, shards)
	if s.cfg.StateDir != "" {
		if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
			return fmt.Errorf("server: state dir: %w", err)
		}
		var err error
		if blobs, seqs, _, err = loadCheckpoint(s.cfg.StateDir, shards, shards); err != nil {
			return fmt.Errorf("server: state dir: %w", err)
		}
	}
	if s.cfg.WALDir != "" {
		if err := os.MkdirAll(s.cfg.WALDir, 0o755); err != nil {
			return fmt.Errorf("server: wal dir: %w", err)
		}
		s.wals = make([]*wal.Log, shards)
	}
	for i, t := range s.cfg.Trees {
		var mtc *core.MutableTC
		if blobs[i] != nil {
			var err error
			if mtc, err = snapshot.Restore(blobs[i]); err != nil {
				return fmt.Errorf("server: shard %d: restore: %w", i, err)
			}
		} else {
			mtc = core.NewMutable(t, core.MutableConfig{
				Config: core.Config{Alpha: s.cfg.Alpha, Capacity: s.cfg.Capacity},
			})
		}
		lastSeq := seqs[i]
		if s.wals != nil {
			l, recs, err := wal.Open(shardWALPath(s.cfg.WALDir, i), wal.Options{
				SyncInterval: s.cfg.FsyncInterval,
				MaxRecord:    s.cfg.MaxFrame + 1,
			})
			if err != nil {
				return fmt.Errorf("server: shard %d: wal: %w", i, err)
			}
			s.wals[i] = l
			applied, newLast, err := replayWAL(mtc, i, recs, lastSeq)
			if err != nil {
				return fmt.Errorf("server: shard %d: wal replay: %w", i, err)
			}
			s.replayed[i] = applied
			lastSeq = newLast
		}
		// The recovery frontier — checkpoint plus replayed tail — is
		// the stats base; the engine counts from zero on top of it.
		s.base[i] = mtc.Ledger()
		s.baseRounds[i] = mtc.Round()
		var algo Algo = snapshot.Checkpointed{MutableTC: mtc}
		if s.cfg.Wrap != nil {
			algo = s.cfg.Wrap(i, algo)
		}
		s.algos[i] = algo
		s.tenants[i] = &tenantState{lastSeq: lastSeq}
	}
	eng := engine.New(engine.Config{
		Shards:          shards,
		NewShard:        func(i int) engine.Algorithm { return s.algos[i] },
		QueueLen:        s.cfg.QueueLen,
		Parallelism:     s.cfg.Parallelism,
		CheckpointEvery: s.cfg.CheckpointEvery,
	})
	// Not ready until the wire listener is up; /readyz stays 503.
	eng.SetReady(false)
	s.eng.Store(eng)
	return nil
}

// replayWAL applies one shard's recovered records on top of its
// restored state. Records at or below lastSeq were already covered by
// the checkpoint and are skipped; the remainder must continue the
// sequence gaplessly (the WAL is written in admission order, and
// recovery only ever truncates its tail). Topology messages mirror the
// engine's runMuts semantics: mutations apply one at a time and the
// first failure drops the rest of that message — so a replayed stream
// reproduces exactly what the live engine did.
func replayWAL(mtc *core.MutableTC, tenant int, recs [][]byte, lastSeq uint64) (applied int64, newLast uint64, err error) {
	for n, rec := range recs {
		if len(rec) < 1 {
			return applied, lastSeq, fmt.Errorf("record %d: empty", n)
		}
		kind, payload := rec[0], rec[1:]
		var seq uint64
		var serve wire.Serve
		var topo wire.Topo
		switch kind {
		case walRecServe:
			if serve, err = wire.DecodeServe(payload); err != nil {
				return applied, lastSeq, fmt.Errorf("record %d: %w", n, err)
			}
			seq = serve.Seq
			if serve.Tenant != tenant {
				return applied, lastSeq, fmt.Errorf("record %d: tenant %d in shard %d's log", n, serve.Tenant, tenant)
			}
		case walRecTopo:
			if topo, err = wire.DecodeTopo(payload); err != nil {
				return applied, lastSeq, fmt.Errorf("record %d: %w", n, err)
			}
			seq = topo.Seq
			if topo.Tenant != tenant {
				return applied, lastSeq, fmt.Errorf("record %d: tenant %d in shard %d's log", n, topo.Tenant, tenant)
			}
		default:
			return applied, lastSeq, fmt.Errorf("record %d: unknown kind %d", n, kind)
		}
		if seq <= lastSeq {
			continue // superseded by the checkpoint
		}
		if seq != lastSeq+1 {
			return applied, lastSeq, fmt.Errorf("record %d: sequence gap: got %d, expected %d", n, seq, lastSeq+1)
		}
		switch kind {
		case walRecServe:
			mtc.ServeBatch(serve.Batch)
		case walRecTopo:
			for i := range topo.Muts {
				if mtc.ApplyTopology(topo.Muts[i:i+1]) != nil {
					break
				}
			}
		}
		lastSeq = seq
		applied++
	}
	return applied, lastSeq, nil
}

// Addr returns the wire listener's address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// AdminAddr returns the admin listener's address, or "" when disabled.
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Engine exposes the wrapped engine (metrics handlers, stats). Nil
// until Start has completed recovery.
func (s *Server) Engine() *engine.Engine { return s.engine() }

// Algorithm returns shard i's instance for inspection. Only touch it
// while the daemon is quiescent (after Shutdown).
func (s *Server) Algorithm(i int) Algo { return s.algos[i] }

// Replayed returns how many WAL records recovery applied to shard i
// (beyond the checkpoint) during Start.
func (s *Server) Replayed(i int) int64 { return s.replayed[i] }

// adminMux is the server-owned admin plane. It differs from the
// engine's MetricsMux in two ways: it exists before the engine does
// (recovery runs with the admin plane already up, /readyz 503), and
// /metrics appends the daemon's durability families after the
// engine's.
func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		eng := s.engine()
		if eng == nil {
			http.Error(w, "recovering", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		eng.MetricsHandler().ServeHTTP(w, r)
		s.writeWALMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness stays green while recovering and through drain, so
		// an orchestrator does not kill a daemon that is replaying its
		// WAL or flushing its queues; it goes red only once the engine
		// is closed.
		if s.closed.Load() {
			http.Error(w, "closed", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		eng := s.engine()
		if !s.ready.Load() || eng == nil || !eng.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	return mux
}

// Shutdown is the graceful drain: withdraw readiness, stop accepting,
// close client connections, drain every shard, checkpoint all state,
// close the WALs and the engine. Idempotent; later calls return the
// first result. The context bounds only the admin server's shutdown —
// drain itself must finish, or restart would lose acknowledged work.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		s.ready.Store(false)
		if eng := s.engine(); eng != nil {
			eng.SetReady(false)
		}
		if s.ckptStop != nil {
			close(s.ckptStop)
			<-s.ckptDone
		}
		if s.ln != nil {
			s.ln.Close()
		}
		// Closing the connections interrupts blocked reads; handlers
		// mid-submit finish their bounded waits first (wg below).
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		if s.admin != nil {
			s.shutErr = s.admin.Shutdown(ctx)
		}
		s.wg.Wait()
		if err := s.checkpoint(); err != nil && s.shutErr == nil {
			s.shutErr = err
		}
		for _, l := range s.wals {
			if err := l.Close(); err != nil && s.shutErr == nil {
				s.shutErr = err
			}
		}
		if eng := s.engine(); eng != nil {
			eng.Close()
		}
		s.closed.Store(true)
	})
	return s.shutErr
}

// Kill crashes the daemon from inside the process: listeners and
// connections close, in-flight handlers unwind, the WALs drop without
// their final fsync, and nothing is checkpointed. It is the in-process
// analogue of kill -9 for crash-recovery tests — state on disk is
// exactly what the durability machinery made of it, no more.
func (s *Server) Kill() {
	s.killOnce.Do(func() {
		s.draining.Store(true)
		s.ready.Store(false)
		if s.ckptStop != nil {
			close(s.ckptStop)
			<-s.ckptDone
		}
		if s.ln != nil {
			s.ln.Close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		if s.admin != nil {
			s.admin.Close()
		}
		// Kill the WALs first so handlers blocked in Wait unwind with
		// an error instead of a durability promise.
		for _, l := range s.wals {
			l.Kill()
		}
		s.wg.Wait()
		if eng := s.engine(); eng != nil {
			eng.Close()
		}
		s.closed.Store(true)
	})
}

// checkpointLoop checkpoints periodically, truncating the WALs each
// time so recovery replay stays bounded.
func (s *Server) checkpointLoop() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
			// Best-effort: a failed background checkpoint leaves the
			// previous one and the full WAL, which is still correct —
			// recovery just replays more.
			_ = s.checkpoint()
		}
	}
}

// checkpoint drains the engine at a submission-quiescent point and
// persists every shard snapshot plus the sequence table as ONE
// durably-committed file, then truncates the WALs the checkpoint
// supersedes. No-op without a state directory.
func (s *Server) checkpoint() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	// The write lock excludes every admission end to end (including
	// WAL appends and fsync waits), so after Drain the shard queues
	// are empty and stay empty: the instances are quiescent and safe
	// to Snapshot, and the WALs have no in-flight appends.
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.engine().Drain()
	blobs := make([][]byte, len(s.algos))
	for i, algo := range s.algos {
		blob, err := algo.Snapshot()
		if err != nil {
			return fmt.Errorf("server: shard %d: snapshot: %w", i, err)
		}
		blobs[i] = blob
	}
	seqs := make([]uint64, len(s.tenants))
	for i, t := range s.tenants {
		t.mu.Lock()
		seqs[i] = t.lastSeq
		t.mu.Unlock()
	}
	if err := writeFileDurable(
		filepath.Join(s.cfg.StateDir, ckptFile), encodeCheckpoint(blobs, seqs)); err != nil {
		return fmt.Errorf("server: checkpoint: %w", err)
	}
	// The checkpoint is durably committed: every WAL record is now
	// superseded, so the logs truncate. A crash between the rename and
	// here replays the full old log against the new sequence table —
	// every record a duplicate, every duplicate dropped.
	for i, l := range s.wals {
		if err := l.Reset(); err != nil {
			return fmt.Errorf("server: shard %d: wal truncate: %w", i, err)
		}
	}
	s.ckpts.Add(1)
	return nil
}

// acceptLoop accepts wire connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal
		}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn serves one client connection: a loop of read frame →
// dispatch → write reply, every step under a deadline.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		f, err := wire.ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF {
				// Framing is broken (garbage, oversize, timeout): tell
				// the client best-effort, then hang up — the stream
				// cannot be re-synchronized.
				s.writeReply(conn, wire.TError, wire.ErrMsg{Msg: err.Error()}.Encode())
			}
			return
		}
		typ, payload := s.dispatch(f)
		if !s.writeReply(conn, typ, payload) {
			return
		}
	}
}

// writeReply writes one reply frame under the write deadline.
func (s *Server) writeReply(conn net.Conn, t wire.Type, payload []byte) bool {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return wire.WriteFrame(conn, t, payload) == nil
}

// dispatch routes one decoded frame to its handler and returns the
// reply. Payload decode errors are per-request failures (the framing
// is still aligned), so the connection survives them.
func (s *Server) dispatch(f wire.Frame) (wire.Type, []byte) {
	switch f.Type {
	case wire.TServe:
		m, err := wire.DecodeServe(f.Payload)
		if err != nil {
			return wire.TError, wire.ErrMsg{Msg: err.Error()}.Encode()
		}
		return s.handleServe(m, f.Payload)
	case wire.TTopo:
		m, err := wire.DecodeTopo(f.Payload)
		if err != nil {
			return wire.TError, wire.ErrMsg{Msg: err.Error()}.Encode()
		}
		return s.handleTopo(m, f.Payload)
	case wire.TStats:
		m, err := wire.DecodeStatsReq(f.Payload)
		if err != nil {
			return wire.TError, wire.ErrMsg{Msg: err.Error()}.Encode()
		}
		return s.handleStats(m)
	case wire.TSnapshot:
		if err := s.handleSnapshot(); err != nil {
			return wire.TError, wire.ErrMsg{Msg: err.Error()}.Encode()
		}
		return wire.TAck, wire.Ack{}.Encode()
	default:
		return wire.TError, wire.ErrMsg{Msg: fmt.Sprintf("server: unexpected frame type %d", f.Type)}.Encode()
	}
}

// admit runs the shared per-tenant admission path: sequence
// deduplication, quota, enqueue via submit (which must return nil, an
// overload signal, or a terminal error), then — with a WAL — durable
// logging of the frame before the ack. n is the request count charged
// against the quota; kind and payload describe the WAL record (the raw
// wire payload, so replay reuses the wire codecs).
//
// The ack discipline around the WAL:
//
//   - The record is appended only after the engine accepted the batch,
//     so every logged record corresponds to an applied (or in-queue)
//     batch; shed batches leave no record.
//   - The ack waits for a group-commit fsync covering the record. A
//     crash before that fsync may lose the batch — but its client
//     never saw an ack, and will retransmit to the restarted daemon,
//     whose replayed sequence table treats the retransmission as the
//     first delivery. A crash after it replays the record. Either way:
//     exactly once, and no ack for a lost batch.
//   - If the fsync fails the log is poisoned: the batch was applied in
//     memory, so lastSeq advances (a retransmission must not double-
//     apply), but the client gets an error, not an ack — no durability
//     promise is made. All later admissions fail fast on the poisoned
//     log until an operator restarts the daemon, which recovers from
//     what actually reached the disk.
func (s *Server) admit(tenant int, seq uint64, n int, kind byte, payload []byte, submit func() error) (wire.Type, []byte) {
	if tenant < 0 || tenant >= len(s.tenants) {
		return wire.TError, wire.ErrMsg{Msg: fmt.Sprintf("server: tenant %d out of range [0,%d)", tenant, len(s.tenants))}.Encode()
	}
	if seq == 0 {
		return wire.TError, wire.ErrMsg{Msg: "server: batch sequence numbers start at 1"}.Encode()
	}
	// Admission holds the checkpoint read lock end to end: the
	// sequence check, WAL append, submit and fsync wait all happen on
	// one side of the checkpoint's consistency point. Lock order is
	// snapMu then t.mu — the same order checkpoint takes them.
	s.snapMu.RLock()
	defer s.snapMu.RUnlock()
	t := s.tenants[tenant]
	t.mu.Lock()
	defer t.mu.Unlock()
	var l *wal.Log
	if s.wals != nil {
		l = s.wals[tenant]
		if err := l.Err(); err != nil {
			// Poisoned: no durability promises of any kind, duplicate
			// acks included.
			return wire.TError, wire.ErrMsg{Msg: err.Error()}.Encode()
		}
	}
	if seq <= t.lastSeq {
		// Idempotent retransmission of an applied batch: acknowledge
		// without re-serving.
		return wire.TAck, wire.Ack{Seq: seq, Dup: true}.Encode()
	}
	if seq != t.lastSeq+1 {
		return wire.TError, wire.ErrMsg{Msg: fmt.Sprintf("server: tenant %d sequence gap: got %d, expected %d", tenant, seq, t.lastSeq+1)}.Encode()
	}
	if s.draining.Load() {
		return wire.TRetry, wire.Retry{AfterNs: drainRetryNs}.Encode()
	}
	if ok, wait := s.quo.take(tenant, n); !ok {
		return wire.TRetry, wire.Retry{AfterNs: int64(wait)}.Encode()
	}
	err := submit()
	switch {
	case err == nil:
	case errors.Is(err, engine.ErrOverloaded),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		// Backpressure shed the batch: explicit retry-after instead of
		// a silent drop, and the quota it consumed flows back.
		s.quo.refund(tenant, n)
		return wire.TRetry, wire.Retry{AfterNs: overloadRetryNs}.Encode()
	case errors.Is(err, engine.ErrClosed):
		s.quo.refund(tenant, n)
		return wire.TRetry, wire.Retry{AfterNs: drainRetryNs}.Encode()
	default:
		s.quo.refund(tenant, n)
		return wire.TError, wire.ErrMsg{Msg: err.Error()}.Encode()
	}
	if l != nil {
		rec := make([]byte, 0, 1+len(payload))
		rec = append(rec, kind)
		rec = append(rec, payload...)
		lsn, err := l.Append(rec)
		if err == nil {
			err = l.Wait(lsn)
		}
		if err != nil {
			// Applied in memory, not durable: advance the sequence (a
			// retransmission must not double-apply) but answer with an
			// error — the ack is a durability promise we cannot make.
			t.lastSeq = seq
			return wire.TError, wire.ErrMsg{Msg: fmt.Sprintf("server: wal: %v", err)}.Encode()
		}
	}
	t.lastSeq = seq
	return wire.TAck, wire.Ack{Seq: seq}.Encode()
}

// handleServe admits one batch: the wire deadline becomes the
// SubmitCtx budget; without one the submit is non-blocking.
func (s *Server) handleServe(m wire.Serve, payload []byte) (wire.Type, []byte) {
	return s.admit(m.Tenant, m.Seq, len(m.Batch), walRecServe, payload, func() error {
		if m.DeadlineNs > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(m.DeadlineNs))
			defer cancel()
			return s.engine().SubmitCtx(ctx, m.Tenant, m.Batch)
		}
		return s.engine().TrySubmit(m.Tenant, m.Batch)
	})
}

// handleTopo admits one topology-mutation control message through the
// same sequence/quota path as serve batches (mutations are ordered
// events in the tenant's stream).
func (s *Server) handleTopo(m wire.Topo, payload []byte) (wire.Type, []byte) {
	return s.admit(m.Tenant, m.Seq, len(m.Muts), walRecTopo, payload, func() error {
		return s.engine().ApplyTopology(m.Tenant, m.Muts)
	})
}

// handleStats answers with the tenant's cumulative ledger: the
// recovery base (work before the last restart, checkpoint plus WAL
// replay) merged with the engine's published counters (work since
// boot). The merge is a componentwise max for the ledger — both cover
// the recovered prefix, published values are cumulative and monotone —
// and a sum for the round count, which the engine counts from zero
// each boot.
func (s *Server) handleStats(m wire.StatsReq) (wire.Type, []byte) {
	if m.Tenant < 0 || m.Tenant >= len(s.tenants) {
		return wire.TError, wire.ErrMsg{Msg: fmt.Sprintf("server: tenant %d out of range [0,%d)", m.Tenant, len(s.tenants))}.Encode()
	}
	ts := s.tenants[m.Tenant]
	ts.mu.Lock()
	lastSeq := ts.lastSeq
	ts.mu.Unlock()
	ss := s.engine().Stats().Shards[m.Tenant]
	led := s.base[m.Tenant]
	reply := wire.StatsReply{
		Tenant:   m.Tenant,
		Rounds:   s.baseRounds[m.Tenant] + ss.Rounds,
		Serve:    max64(led.Serve, ss.Serve),
		Move:     max64(led.Move, ss.Move),
		Fetched:  max64(led.Fetched, ss.Fetched),
		Evicted:  max64(led.Evicted, ss.Evicted),
		Restarts: ss.Restarts,
		Dropped:  ss.Dropped,
		LastSeq:  lastSeq,
	}
	return wire.TStatsReply, reply.Encode()
}

// handleSnapshot checkpoints all shards on demand — the same
// consistency point Shutdown takes, without stopping the daemon.
func (s *Server) handleSnapshot() error {
	if s.cfg.StateDir == "" {
		return errors.New("server: no state directory configured")
	}
	return s.checkpoint()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
