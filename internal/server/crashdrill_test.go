package server_test

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/tree"
)

// The crash drill runs the daemon in a real child process and SIGKILLs
// it, so the recovery path is exercised across an actual process
// boundary: no destructors, no final fsync, no drain. TestMain re-execs
// the test binary as that child when the env var is set.
const crashChildEnv = "TREECACHED_CRASH_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(crashChildEnv) == "1" {
		runCrashChild()
		return
	}
	os.Exit(m.Run())
}

// runCrashChild boots the daemon with the drill's fixed geometry and
// blocks until SIGKILL. Configuration arrives via environment: listen
// address, admin address, state dir.
func runCrashChild() {
	cfg := server.Config{
		Addr:               os.Getenv("CRASH_ADDR"),
		AdminAddr:          os.Getenv("CRASH_ADMIN"),
		StateDir:           os.Getenv("CRASH_STATE"),
		WALDir:             os.Getenv("CRASH_STATE"),
		FsyncInterval:      2 * time.Millisecond,
		CheckpointInterval: 25 * time.Millisecond,
		Trees:              []*tree.Tree{walTestTree()},
		Alpha:              4,
		Capacity:           16,
		QueueLen:           16,
	}
	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	select {} // die by SIGKILL only
}

// spawnCrashChild re-execs the test binary as a daemon and waits until
// /readyz reports 200 — i.e. checkpoint restored and WAL replayed.
func spawnCrashChild(t *testing.T, addr, admin, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		"CRASH_ADDR="+addr,
		"CRASH_ADMIN="+admin,
		"CRASH_STATE="+dir,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn child: %v", err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	deadline := time.Now().Add(30 * time.Second)
	url := "http://" + admin + "/readyz"
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatalf("child never became ready at %s", url)
	return nil
}

// TestCrashDrillSIGKILL is the acceptance drill: a driver pushes
// batches at a child daemon while the parent SIGKILLs it at three
// traffic-triggered points (randomly jittered, so kills land mid
// batch, inside the group-commit fsync window, and across the 25ms
// background checkpoint cadence). After every restart the recovered
// sequence frontier must cover every batch acknowledged before the
// kill — zero acknowledged loss — and the final ledger must match a
// sequential replay cost for cost, each batch applied exactly once.
func TestCrashDrillSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec drill skipped in -short")
	}
	addr := reserveAddr(t)
	admin := reserveAddr(t)
	dir := t.TempDir()

	const nBatches, batchLen = 240, 16
	batches := walTestBatches(nBatches, batchLen)
	cmd := spawnCrashChild(t, addr, admin, dir)

	// The driver retries hard enough to ride out every kill+restart
	// window; acked counts batches whose durability ack arrived.
	var acked atomic.Int64
	driverErr := make(chan error, 1)
	go func() {
		cl := client.New(client.Config{
			Addr:        addr,
			Timeout:     500 * time.Millisecond,
			MaxAttempts: 4000,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  25 * time.Millisecond,
			Seed:        71,
		})
		defer cl.Close()
		for i, b := range batches {
			if err := cl.Serve(0, b); err != nil {
				driverErr <- fmt.Errorf("batch %d: %w", i, err)
				return
			}
			acked.Add(1)
		}
		driverErr <- nil
	}()

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round, frac := range []int64{1, 2, 3} {
		threshold := frac * nBatches / 4
		for acked.Load() < threshold {
			select {
			case err := <-driverErr:
				t.Fatalf("driver finished before kill %d (acked %d): %v", round, acked.Load(), err)
			case <-time.After(time.Millisecond):
			}
		}
		// Jitter so the three kills land at different phases of the
		// batch/fsync/checkpoint cycle.
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
		ackedAtKill := acked.Load()
		if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
			t.Fatalf("kill %d: %v", round, err)
		}
		_ = cmd.Wait()
		cmd = spawnCrashChild(t, addr, admin, dir)

		probe := client.New(client.Config{Addr: addr, Seed: int64(80 + round), MaxAttempts: 200})
		reply, err := probe.Stats(0)
		probe.Close()
		if err != nil {
			t.Fatalf("stats after restart %d: %v", round, err)
		}
		if int64(reply.LastSeq) < ackedAtKill {
			t.Fatalf("restart %d lost acknowledged batches: LastSeq %d < %d acked at kill",
				round, reply.LastSeq, ackedAtKill)
		}
		t.Logf("kill %d: acked %d, recovered LastSeq %d", round+1, ackedAtKill, reply.LastSeq)
	}

	if err := <-driverErr; err != nil {
		t.Fatalf("driver: %v", err)
	}
	// One last hard kill with everything acknowledged, then the
	// cost-for-cost verdict against a sequential oracle.
	_ = cmd.Process.Signal(syscall.SIGKILL)
	_ = cmd.Wait()
	cmd = spawnCrashChild(t, addr, admin, dir)
	defer func() { _ = cmd.Process.Signal(syscall.SIGKILL); _ = cmd.Wait() }()

	cl := client.New(client.Config{Addr: addr, Seed: 99, MaxAttempts: 200})
	defer cl.Close()
	reply, err := cl.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.LastSeq != nBatches {
		t.Fatalf("final LastSeq %d, want %d", reply.LastSeq, nBatches)
	}
	ref := walOracle(batches, nBatches)
	led := ref.Ledger()
	if reply.Rounds != ref.Round() || reply.Serve != led.Serve || reply.Move != led.Move ||
		reply.Fetched != led.Fetched || reply.Evicted != led.Evicted {
		t.Fatalf("recovered ledger %+v != sequential oracle %+v (rounds %d vs %d)",
			reply, led, reply.Rounds, ref.Round())
	}
}
