package server_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/tree"
	"repro/internal/wire"
)

// goldenFleet is the reference fleet the golden multi-tenant churn
// trace validates against (internal/trace/testdata).
func goldenFleet() []*tree.Tree {
	return []*tree.Tree{
		tree.CompleteKary(31, 2),
		tree.Star(20),
		tree.Path(12),
		tree.Caterpillar(4, 2),
	}
}

const (
	e2eAlpha    = 4
	e2eCapacity = 8
)

func loadGolden(t *testing.T) trace.MultiTrace {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "trace", "testdata", "multitenant_churn.txt"))
	if err != nil {
		t.Fatal(err)
	}
	mt, err := trace.ReadMulti(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.Validate(goldenFleet()); err != nil {
		t.Fatal(err)
	}
	return mt
}

// reserveAddr picks a free loopback port and releases it, so two
// consecutive server lives can bind the same address.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestE2EChaosDrill is the full-stack robustness drill: a daemon
// serving the golden multi-tenant churn trace to four concurrent
// clients over real TCP, while the run is peppered with
//
//   - mid-batch shard panics and a mid-churn topology panic
//     (internal/faultinject), recovered by engine supervision;
//   - killed client connections (Client.BreakConn), recovered by
//     redial + idempotent re-submission;
//   - per-tenant quota exhaustion, shed as RETRY-AFTER and absorbed by
//     client backoff;
//   - a full SIGTERM-equivalent mid-stream: graceful drain, state-dir
//     checkpoint, process "restart" (new Server on the same state
//     dir and address), clients riding through on retries.
//
// Afterwards every tenant's ledger, cache contents and topology state
// must be bit-identical to an uninterrupted sequential replay — the
// differential oracle that proves no batch was lost, duplicated, or
// half-applied anywhere in the stack.
func TestE2EChaosDrill(t *testing.T) {
	mt := loadGolden(t)
	tenants := len(goldenFleet())
	churn := mt.SplitChurn(tenants)

	addr := reserveAddr(t)
	stateDir := t.TempDir()

	// One injector per shard, shared across both server lives: a fault
	// still armed at the restart stays armed in life 2.
	injs := make([]*faultinject.Injector, tenants)
	for i := range injs {
		injs[i] = faultinject.NewInjector()
	}
	// inner[i] is shard i's live MutableTC (latest server life), for
	// the final differential against the sequential oracle.
	var innerMu sync.Mutex
	inner := make([]*core.MutableTC, tenants)

	mkServer := func() *server.Server {
		srv, err := server.New(server.Config{
			Addr:            addr,
			StateDir:        stateDir,
			Trees:           goldenFleet(),
			Alpha:           e2eAlpha,
			Capacity:        e2eCapacity,
			QueueLen:        4,
			CheckpointEvery: 4,
			Quota:           server.QuotaConfig{Rate: 2000, Burst: 16},
			Wrap: func(shard int, algo server.Algo) server.Algo {
				innerMu.Lock()
				inner[shard] = algo.(snapshot.Checkpointed).MutableTC
				innerMu.Unlock()
				return faultinject.Wrap(algo, injs[shard])
			},
		})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		if err := srv.Start(); err != nil {
			t.Fatalf("server.Start: %v", err)
		}
		return srv
	}

	srv := mkServer()
	// Mid-batch panics on two shards, a mid-churn panic on a third:
	// supervision must replay each back to exactness.
	injs[0].Arm(faultinject.ServeRequest, 10)
	injs[2].Arm(faultinject.ServeRequest, 15)
	injs[1].Arm(faultinject.TopologyOp, 1)

	// halfway closes when tenant 0 is half done: the signal to restart
	// the daemon under everyone's feet.
	halfway := make(chan struct{})
	clients := make([]*client.Client, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		cl := client.New(client.Config{
			Addr:        addr,
			Timeout:     500 * time.Millisecond,
			MaxAttempts: 400,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			Seed:        int64(1000 + i),
		})
		clients[i] = cl
		wg.Add(1)
		go func(tenant int, ops trace.ChurnTrace) {
			defer wg.Done()
			defer cl.Close()
			var batch trace.Trace
			flush := func() error {
				if len(batch) == 0 {
					return nil
				}
				err := cl.Serve(tenant, batch)
				batch = batch[:0]
				return err
			}
			for k, op := range ops {
				if tenant == 0 && k == len(ops)/2 {
					close(halfway)
				}
				if tenant == 3 && k == len(ops)/3 {
					cl.BreakConn() // killed connection mid-stream
				}
				if op.IsMut {
					if err := flush(); err != nil {
						t.Errorf("tenant %d: flush before mutation: %v", tenant, err)
						return
					}
					if err := cl.ApplyTopology(tenant, []trace.Mutation{op.Mut}); err != nil {
						t.Errorf("tenant %d: mutation %d: %v", tenant, k, err)
						return
					}
					continue
				}
				batch = append(batch, op.Req)
				if len(batch) == 8 {
					if err := flush(); err != nil {
						t.Errorf("tenant %d: batch at op %d: %v", tenant, k, err)
						return
					}
				}
			}
			if err := flush(); err != nil {
				t.Errorf("tenant %d: final flush: %v", tenant, err)
			}
		}(i, churn[i])
	}

	// The restart: drain + checkpoint mid-stream, then a new server
	// life on the same state dir and address while clients retry.
	<-halfway
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("mid-stream shutdown: %v", err)
	}
	cancel()
	srv = mkServer()

	wg.Wait()
	if t.Failed() {
		return
	}

	// Prove the faults actually happened.
	if f := injs[0].Fired(faultinject.ServeRequest) + injs[2].Fired(faultinject.ServeRequest); f != 2 {
		t.Errorf("serve-request faults fired %d times, want 2", f)
	}
	if f := injs[1].Fired(faultinject.TopologyOp); f != 1 {
		t.Errorf("topology fault fired %d times, want 1", f)
	}
	var totalRetries int64
	for _, cl := range clients {
		totalRetries += cl.Retries()
	}
	if totalRetries == 0 {
		t.Error("no client ever retried: the drill exercised nothing")
	}
	t.Logf("client retries absorbed: %d", totalRetries)

	// Wire-level stats parity: checkpoint (drains the engine), then
	// the served ledgers over the wire must match the oracle exactly.
	cl := client.New(client.Config{Addr: addr, Seed: 1})
	if err := cl.Snapshot(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	replies := make([]wire.StatsReply, tenants)
	for i := range replies {
		r, err := cl.Stats(i)
		if err != nil {
			t.Fatalf("stats(%d): %v", i, err)
		}
		replies[i] = r
	}
	cl.Close()
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("final shutdown: %v", err)
	}

	// The differential: sequential uninterrupted replay per tenant.
	fleet := goldenFleet()
	for i := 0; i < tenants; i++ {
		ref := core.NewMutable(fleet[i], core.MutableConfig{
			Config: core.Config{Alpha: e2eAlpha, Capacity: e2eCapacity},
		})
		if _, _, err := ref.ServeChurn(churn[i]); err != nil {
			t.Fatal(err)
		}
		got := inner[i]
		if got.Ledger() != ref.Ledger() {
			t.Errorf("tenant %d ledger %+v != sequential %+v", i, got.Ledger(), ref.Ledger())
		}
		if got.Round() != ref.Round() {
			t.Errorf("tenant %d rounds %d != sequential %d", i, got.Round(), ref.Round())
		}
		if got.Epoch() != ref.Epoch() || got.Pending() != ref.Pending() {
			t.Errorf("tenant %d topology (epoch %d, pending %d) != sequential (%d, %d)",
				i, got.Epoch(), got.Pending(), ref.Epoch(), ref.Pending())
		}
		gm, wm := got.CacheMembers(), ref.CacheMembers()
		if fmt.Sprint(gm) != fmt.Sprint(wm) {
			t.Errorf("tenant %d cache %v != sequential %v", i, gm, wm)
		}
		led := ref.Ledger()
		r := replies[i]
		if r.Rounds != ref.Round() || r.Serve != led.Serve || r.Move != led.Move ||
			r.Fetched != led.Fetched || r.Evicted != led.Evicted {
			t.Errorf("tenant %d wire stats %+v != sequential ledger %+v (rounds %d)", i, r, led, ref.Round())
		}
	}
}

// rawDo writes one frame and reads the reply — the raw-wire harness
// for exact protocol-semantics assertions the retrying client would
// paper over.
func rawDo(t *testing.T, conn net.Conn, typ wire.Type, payload []byte) wire.Frame {
	t.Helper()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteFrame(conn, typ, payload); err != nil {
		t.Fatalf("write %v: %v", typ, err)
	}
	f, err := wire.ReadFrame(conn, wire.DefaultMaxPayload)
	if err != nil {
		t.Fatalf("read reply to %v: %v", typ, err)
	}
	return f
}

// TestServerWireSemantics pins the per-request protocol semantics at
// the raw wire level: backpressure maps to TRetry (not drops or
// blocking), deadlines expire as TRetry, duplicate sequence numbers
// ack without re-serving, gaps and malformed requests are TError, and
// a broken frame stream closes the connection.
func TestServerWireSemantics(t *testing.T) {
	inj := faultinject.NewInjector()
	srv, err := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		Trees:    []*tree.Tree{tree.CompleteKary(31, 2)},
		Alpha:    4,
		Capacity: 8,
		QueueLen: 1,
		Wrap: func(shard int, algo server.Algo) server.Algo {
			return faultinject.Wrap(algo, inj)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	batch := trace.Trace{trace.Pos(1), trace.Pos(2)}

	// Stall the worker on the first batch so the 1-slot queue backs up
	// deterministically.
	inj.Arm(faultinject.Stall, 1)
	f := rawDo(t, conn, wire.TServe, wire.Serve{Tenant: 0, Seq: 1, Batch: batch}.Encode())
	if f.Type != wire.TAck {
		t.Fatalf("seq 1: %v, want ack", f.Type)
	}
	for inj.Fired(faultinject.Stall) == 0 {
		time.Sleep(time.Millisecond) // wait until the worker holds batch 1
	}
	f = rawDo(t, conn, wire.TServe, wire.Serve{Tenant: 0, Seq: 2, Batch: batch}.Encode())
	if f.Type != wire.TAck {
		t.Fatalf("seq 2 (fills queue): %v, want ack", f.Type)
	}

	// Queue full, no deadline: non-blocking shed with a retry hint.
	f = rawDo(t, conn, wire.TServe, wire.Serve{Tenant: 0, Seq: 3, Batch: batch}.Encode())
	if f.Type != wire.TRetry {
		t.Fatalf("overload without deadline: %v, want retry", f.Type)
	}
	r, err := wire.DecodeRetry(f.Payload)
	if err != nil || r.AfterNs <= 0 {
		t.Fatalf("retry hint: %+v, %v", r, err)
	}

	// Queue full, with deadline: blocks the deadline out, then sheds.
	start := time.Now()
	f = rawDo(t, conn, wire.TServe, wire.Serve{
		Tenant: 0, Seq: 3, DeadlineNs: int64(20 * time.Millisecond), Batch: batch,
	}.Encode())
	if f.Type != wire.TRetry {
		t.Fatalf("overload with deadline: %v, want retry", f.Type)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("deadline submit returned in %v, should have waited ~20ms", waited)
	}

	// Un-stall; the shed seq 3 now goes through.
	inj.Release()
	f = rawDo(t, conn, wire.TServe, wire.Serve{Tenant: 0, Seq: 3, Batch: batch}.Encode())
	if f.Type != wire.TAck {
		t.Fatalf("seq 3 after release: %v, want ack", f.Type)
	}

	// Duplicate: acknowledged as already applied, never re-served.
	f = rawDo(t, conn, wire.TServe, wire.Serve{Tenant: 0, Seq: 2, Batch: batch}.Encode())
	ack, err := wire.DecodeAck(f.Payload)
	if f.Type != wire.TAck || err != nil || !ack.Dup {
		t.Fatalf("duplicate seq 2: type %v ack %+v err %v, want dup ack", f.Type, ack, err)
	}

	// Sequence gap, zero sequence, bad tenant: explicit errors.
	for name, m := range map[string]wire.Serve{
		"gap":        {Tenant: 0, Seq: 99, Batch: batch},
		"zero seq":   {Tenant: 0, Seq: 0, Batch: batch},
		"bad tenant": {Tenant: 7, Seq: 1, Batch: batch},
	} {
		if f = rawDo(t, conn, wire.TServe, m.Encode()); f.Type != wire.TError {
			t.Fatalf("%s: %v, want error", name, f.Type)
		}
	}

	// A decode failure is a per-request error; the connection survives.
	if f = rawDo(t, conn, wire.TServe, []byte{0xff}); f.Type != wire.TError {
		t.Fatalf("truncated payload: %v, want error", f.Type)
	}
	if f = rawDo(t, conn, wire.TServe, wire.Serve{Tenant: 0, Seq: 4, Batch: batch}.Encode()); f.Type != wire.TAck {
		t.Fatalf("after payload error: %v, want ack (connection must survive)", f.Type)
	}

	// Broken framing (bad magic) kills the connection after a best-
	// effort error reply.
	if _, err := conn.Write([]byte("XXgarbage-that-is-not-a-frame")); err != nil {
		t.Fatal(err)
	}
	f, err = wire.ReadFrame(conn, wire.DefaultMaxPayload)
	if err != nil || f.Type != wire.TError {
		t.Fatalf("garbage frame: %v %v, want error reply", f.Type, err)
	}
	if _, err := wire.ReadFrame(conn, wire.DefaultMaxPayload); err == nil {
		t.Fatal("connection stayed open after broken framing")
	}
}

// TestServerOversizedFrame: a length prefix beyond the server's limit
// is rejected before allocation and the connection is closed.
func TestServerOversizedFrame(t *testing.T) {
	srv, err := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		Trees:    []*tree.Tree{tree.Path(8)},
		Alpha:    2,
		Capacity: 4,
		MaxFrame: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	// Header claiming a 1 MiB payload against a 1 KiB limit.
	hdr := []byte{'T', 'W', wire.Version, byte(wire.TServe), 0, 0, 16, 0}
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(conn, wire.DefaultMaxPayload)
	if err != nil || f.Type != wire.TError {
		t.Fatalf("oversized frame: %v %v, want error reply", f.Type, err)
	}
	if _, err := wire.ReadFrame(conn, wire.DefaultMaxPayload); err == nil {
		t.Fatal("connection stayed open after oversized frame")
	}
}

// TestServerRestoreStatsContinuity: stats served over the wire span a
// restart — the restored base ledger and the new engine's counters
// merge into one monotone cumulative view.
func TestServerRestoreStatsContinuity(t *testing.T) {
	addr := reserveAddr(t)
	stateDir := t.TempDir()
	tr := tree.CompleteKary(63, 2)
	mk := func() *server.Server {
		srv, err := server.New(server.Config{
			Addr: addr, StateDir: stateDir,
			Trees: []*tree.Tree{tr}, Alpha: 4, Capacity: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	shutdown := func(srv *server.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}

	srv := mk()
	cl := client.New(client.Config{Addr: addr, Seed: 2})
	batch := make(trace.Trace, 32)
	for i := range batch {
		batch[i] = trace.Pos(tree.NodeID(i * 2 % 63))
	}
	if err := cl.Serve(0, batch); err != nil {
		t.Fatal(err)
	}
	shutdown(srv)

	srv = mk()
	defer shutdown(srv)
	// A fresh client process must resume numbering from the restored
	// sequence table, not restart at 1.
	cl2 := client.New(client.Config{Addr: addr, Seed: 3})
	if err := cl2.Resume(0); err != nil {
		t.Fatal(err)
	}
	before, err := cl2.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if before.Rounds != int64(len(batch)) {
		t.Fatalf("restored rounds %d, want %d", before.Rounds, len(batch))
	}
	if before.LastSeq != 1 {
		t.Fatalf("restored last seq %d, want 1", before.LastSeq)
	}
	if err := cl2.Serve(0, batch); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Snapshot(); err != nil { // drain so stats are final
		t.Fatal(err)
	}
	after, err := cl2.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if after.Rounds != int64(2*len(batch)) {
		t.Fatalf("cumulative rounds %d, want %d", after.Rounds, 2*len(batch))
	}
	if after.Total() <= before.Total() {
		t.Fatalf("cumulative cost did not grow across restart: %d -> %d", before.Total(), after.Total())
	}
	cl2.Close()
}
