package server_test

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/tree"
)

// walTestTree and the generated workload are shared by every WAL
// recovery test: one tenant, deterministic Zipf batches.
func walTestTree() *tree.Tree { return tree.CompleteKary(63, 2) }

func walTestBatches(n, batchLen int) []trace.Trace {
	rng := rand.New(rand.NewSource(7))
	input := trace.ZipfNodes(rng, walTestTree(), n*batchLen, 1.1)
	batches := make([]trace.Trace, n)
	for i := range batches {
		batches[i] = input[i*batchLen : (i+1)*batchLen]
	}
	return batches
}

// walOracle serves the first n batches sequentially and returns the
// reference instance.
func walOracle(batches []trace.Trace, n int) *core.MutableTC {
	ref := core.NewMutable(walTestTree(), core.MutableConfig{
		Config: core.Config{Alpha: 4, Capacity: 16},
	})
	for _, b := range batches[:n] {
		for _, r := range b {
			ref.Serve(r)
		}
	}
	return ref
}

func walServerConfig(addr, dir string) server.Config {
	return server.Config{
		Addr:          addr,
		StateDir:      dir,
		WALDir:        dir,
		FsyncInterval: time.Millisecond,
		Trees:         []*tree.Tree{walTestTree()},
		Alpha:         4,
		Capacity:      16,
		QueueLen:      16,
	}
}

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	return srv
}

// TestServerWALKillRecovery is the in-process kill -9 drill: batches
// are acknowledged under the WAL, the daemon dies with no checkpoint
// at all, and the restarted daemon must hold every acknowledged batch
// — same sequence frontier, cost-for-cost same ledger as a sequential
// replay, applied exactly once.
func TestServerWALKillRecovery(t *testing.T) {
	addr := reserveAddr(t)
	dir := t.TempDir()
	const nBatches, batchLen = 40, 16
	batches := walTestBatches(nBatches, batchLen)

	srv := startServer(t, walServerConfig(addr, dir))
	cl := client.New(client.Config{Addr: addr, Seed: 11})
	for i, b := range batches {
		if err := cl.Serve(0, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	cl.Close()
	// Hard crash: no drain, no checkpoint, no final fsync.
	srv.Kill()
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.tcckpt")); !os.IsNotExist(err) {
		t.Fatalf("Kill checkpointed: %v", err)
	}

	srv2 := startServer(t, walServerConfig(addr, dir))
	defer shutdownServer(t, srv2)
	if got := srv2.Replayed(0); got != nBatches {
		t.Fatalf("replayed %d records, want %d", got, nBatches)
	}
	cl2 := client.New(client.Config{Addr: addr, Seed: 12})
	defer cl2.Close()
	reply, err := cl2.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.LastSeq != nBatches {
		t.Fatalf("recovered LastSeq %d, want %d — acknowledged batches lost", reply.LastSeq, nBatches)
	}
	ref := walOracle(batches, nBatches)
	led := ref.Ledger()
	if reply.Rounds != ref.Round() || reply.Serve != led.Serve || reply.Move != led.Move ||
		reply.Fetched != led.Fetched || reply.Evicted != led.Evicted {
		t.Fatalf("recovered ledger %+v != sequential %+v (rounds %d vs %d)", reply, led, reply.Rounds, ref.Round())
	}
	// Exactly once: a retransmission of the last batch is a duplicate,
	// not a re-serve.
	if err := cl2.Resume(0); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Serve(0, batches[nBatches-1]); err != nil {
		t.Fatal(err)
	}
	after, err := cl2.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if after.LastSeq != nBatches+1 {
		t.Fatalf("post-recovery serve LastSeq %d, want %d", after.LastSeq, nBatches+1)
	}
}

// TestServerWALCheckpointRotation: an on-demand checkpoint truncates
// the WAL (recovery time stays bounded), and a kill after further
// traffic recovers checkpoint + tail — replaying only the tail.
func TestServerWALCheckpointRotation(t *testing.T) {
	addr := reserveAddr(t)
	dir := t.TempDir()
	const nBatches, batchLen, ckptAt = 30, 16, 20
	batches := walTestBatches(nBatches, batchLen)

	srv := startServer(t, walServerConfig(addr, dir))
	cl := client.New(client.Config{Addr: addr, Seed: 21})
	for i, b := range batches[:ckptAt] {
		if err := cl.Serve(0, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	walPath := filepath.Join(dir, "shard-0000.wal")
	if st, err := os.Stat(walPath); err != nil || st.Size() == 0 {
		t.Fatalf("wal before checkpoint: %v, size 0", err)
	}
	if err := cl.Snapshot(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if st, err := os.Stat(walPath); err != nil || st.Size() != 0 {
		t.Fatalf("checkpoint did not truncate the wal: %v, %d bytes", err, st.Size())
	}
	for i, b := range batches[ckptAt:] {
		if err := cl.Serve(0, b); err != nil {
			t.Fatalf("batch %d: %v", ckptAt+i, err)
		}
	}
	cl.Close()
	srv.Kill()

	srv2 := startServer(t, walServerConfig(addr, dir))
	defer shutdownServer(t, srv2)
	if got := srv2.Replayed(0); got != nBatches-ckptAt {
		t.Fatalf("replayed %d records, want %d (checkpoint must supersede the prefix)", got, nBatches-ckptAt)
	}
	cl2 := client.New(client.Config{Addr: addr, Seed: 22})
	defer cl2.Close()
	reply, err := cl2.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.LastSeq != nBatches {
		t.Fatalf("recovered LastSeq %d, want %d", reply.LastSeq, nBatches)
	}
	ref := walOracle(batches, nBatches)
	led := ref.Ledger()
	if reply.Rounds != ref.Round() || reply.Serve != led.Serve || reply.Move != led.Move {
		t.Fatalf("recovered ledger %+v != sequential %+v", reply, led)
	}
}

// TestServerWALTornTail: garbage appended to the log (a crash mid
// write(2)) truncates on recovery instead of failing startup, and the
// valid prefix survives.
func TestServerWALTornTail(t *testing.T) {
	addr := reserveAddr(t)
	dir := t.TempDir()
	const nBatches, batchLen = 10, 16
	batches := walTestBatches(nBatches, batchLen)

	srv := startServer(t, walServerConfig(addr, dir))
	cl := client.New(client.Config{Addr: addr, Seed: 31})
	for i, b := range batches {
		if err := cl.Serve(0, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	cl.Close()
	srv.Kill()

	walPath := filepath.Join(dir, "shard-0000.wal")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2 := startServer(t, walServerConfig(addr, dir))
	defer shutdownServer(t, srv2)
	if got := srv2.Replayed(0); got != nBatches {
		t.Fatalf("replayed %d records, want %d", got, nBatches)
	}
	cl2 := client.New(client.Config{Addr: addr, Seed: 32})
	defer cl2.Close()
	reply, err := cl2.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if reply.LastSeq != nBatches {
		t.Fatalf("recovered LastSeq %d, want %d", reply.LastSeq, nBatches)
	}
}

// TestServerSnapshotAdmitNoDeadlock is the lock-order regression test:
// checkpoints (snapMu write + tenant mu) racing admissions (snapMu
// read + tenant mu) must make progress. The pre-WAL admission path
// took the tenant lock first and the checkpoint lock second — the
// opposite order of checkpoint() — so an on-demand TSnapshot racing a
// Serve could deadlock the daemon.
func TestServerSnapshotAdmitNoDeadlock(t *testing.T) {
	addr := reserveAddr(t)
	dir := t.TempDir()
	srv := startServer(t, walServerConfig(addr, dir))
	defer shutdownServer(t, srv)

	batches := walTestBatches(64, 8)
	var wg sync.WaitGroup
	var seq atomic.Uint64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := client.New(client.Config{Addr: addr, Seed: int64(40 + w), MaxAttempts: 200})
			defer cl.Close()
			for {
				n := seq.Add(1)
				if n > uint64(len(batches)) {
					return
				}
				// Each worker claims distinct sequence numbers; the
				// retrying client resolves the inevitable gaps via
				// Resume.
				if err := cl.Resume(0); err != nil {
					t.Errorf("worker %d resume: %v", w, err)
					return
				}
				if err := cl.Serve(0, batches[n%uint64(len(batches))]); err != nil {
					t.Errorf("worker %d serve: %v", w, err)
					return
				}
			}
		}(w)
	}
	snap := client.New(client.Config{Addr: addr, Seed: 49})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := snap.Snapshot(); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
		}
	}()
	finished := make(chan struct{})
	go func() { wg.Wait(); <-done; close(finished) }()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("admission/checkpoint deadlock: drill did not finish")
	}
	snap.Close()
}

// TestServerWALMetricsAndReadyz: the admin plane exposes the WAL
// durability families after the engine's, and /readyz answers 200 once
// recovery completed.
func TestServerWALMetricsAndReadyz(t *testing.T) {
	addr := reserveAddr(t)
	dir := t.TempDir()
	cfg := walServerConfig(addr, dir)
	cfg.AdminAddr = "127.0.0.1:0"
	srv := startServer(t, cfg)
	defer shutdownServer(t, srv)

	cl := client.New(client.Config{Addr: addr, Seed: 51})
	defer cl.Close()
	for i, b := range walTestBatches(4, 8) {
		if err := cl.Serve(0, b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.AdminAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after start: %d", code)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, family := range []string{
		"treecache_wal_records_total{shard=\"0\"} 4",
		"treecache_wal_fsyncs_total",
		"treecache_wal_fsync_latency_ns_bucket",
		"treecache_wal_replayed_records",
		"treecache_checkpoints_total",
		"treecache_serve_cost_total", // engine families still present
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", body)
	}
}

// TestServerWALTopologyRecovery: topology mutations ride the WAL too —
// a killed daemon recovers its mutated tree, and replayed mutation
// streams mirror the engine's first-error-drops-the-rest semantics.
func TestServerWALTopologyRecovery(t *testing.T) {
	addr := reserveAddr(t)
	dir := t.TempDir()
	// A mutable path: grow leaves, serve them, kill, recover.
	cfg := walServerConfig(addr, dir)
	srv := startServer(t, cfg)

	cl := client.New(client.Config{Addr: addr, Seed: 61})
	batches := walTestBatches(4, 16)
	if err := cl.Serve(0, batches[0]); err != nil {
		t.Fatal(err)
	}
	// Attach a fresh leaf under the root, then serve it.
	mut := trace.InsertMut(63, 0)
	if err := cl.ApplyTopology(0, []trace.Mutation{mut}); err != nil {
		t.Fatal(err)
	}
	leafReq := trace.Trace{trace.Pos(63), trace.Pos(63)}
	if err := cl.Serve(0, leafReq); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	srv.Kill()

	srv2 := startServer(t, cfg)
	defer shutdownServer(t, srv2)
	if got := srv2.Replayed(0); got != 3 {
		t.Fatalf("replayed %d records, want 3 (serve, topo, serve)", got)
	}
	cl2 := client.New(client.Config{Addr: addr, Seed: 62})
	defer cl2.Close()
	reply, err := cl2.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: same stream sequentially.
	ref := core.NewMutable(walTestTree(), core.MutableConfig{
		Config: core.Config{Alpha: 4, Capacity: 16},
	})
	for _, r := range batches[0] {
		ref.Serve(r)
	}
	if err := ref.ApplyTopology([]trace.Mutation{mut}); err != nil {
		t.Fatal(err)
	}
	for _, r := range leafReq {
		ref.Serve(r)
	}
	led := ref.Ledger()
	if reply.Rounds != ref.Round() || reply.Serve != led.Serve || reply.Move != led.Move {
		t.Fatalf("recovered ledger %+v != sequential %+v", reply, led)
	}
	// The recovered tree knows the new leaf: serving it again must be
	// accepted (a daemon that lost the mutation would error).
	if err := cl2.Resume(0); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Serve(0, trace.Trace{trace.Pos(63)}); err != nil {
		t.Fatalf("serve on recovered topology: %v", err)
	}
}

func shutdownServer(t *testing.T, srv *server.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
