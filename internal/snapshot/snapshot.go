// Package snapshot is a versioned, checksummed binary codec for the
// full observable state of a dynamic-topology tree cache
// (core.MutableTC): Capture serializes core.MutableState — stable-id
// topology, per-node counters, cached set, overlay/pending mutations,
// ledger and round/phase/peak cursors — and Restore rebuilds an
// equivalent live instance without trace replay, through the same
// state-migrating injection pass the amortized rebuild uses.
//
// Wire format (all integers little-endian):
//
//	magic   [6]byte  "TCSNAP"
//	version uint16   format version (currently 1)
//	crc32   uint32   IEEE CRC over the payload
//	payload varint-coded fields:
//	        alpha capacity rebuildFrac(float64 bits, 8 bytes) epoch
//	        pending round phaseRounds phase peak
//	        serve move fetched evicted          (ledger; alpha above)
//	        ids, then per stable id:
//	          flags byte (bit0 live, bit1 inSnap, bit2 cached)
//	          parent+1 varint (0 encodes None)
//	          counter varint (live ids only)
//
// Every read is bounds-checked and every integrity failure — bad
// magic, unknown version, truncation, checksum mismatch — is returned
// as an error wrapping ErrFormat or ErrChecksum; corrupted bytes never
// panic. A checksum-valid payload is additionally structurally
// validated by core.RestoreMutable (id-space wiring, live parents,
// downward-closed cached set, capacity) before any state is built.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/tree"
)

// Version is the current snapshot format version. Restore rejects
// snapshots written by a newer (unknown) format.
const Version = 1

const headerLen = 12 // magic(6) + version(2) + crc32(4)

var magic = [6]byte{'T', 'C', 'S', 'N', 'A', 'P'}

var (
	// ErrChecksum reports payload corruption: the stored CRC does not
	// match the payload bytes.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrFormat reports a malformed envelope or payload (bad magic,
	// unsupported version, truncated or overlong data).
	ErrFormat = errors.New("snapshot: malformed")
)

// Capture serializes m's full observable state.
func Capture(m *core.MutableTC) ([]byte, error) {
	st := m.ExportState()
	ids := len(st.Live)
	payload := make([]byte, 0, 64+3*ids)
	put := func(v int64) {
		if v < 0 {
			// Captured state is non-negative by construction; guard so a
			// future field change cannot silently wrap through uvarint.
			panic(fmt.Sprintf("snapshot: negative field %d in captured state", v))
		}
		payload = binary.AppendUvarint(payload, uint64(v))
	}
	put(m.Alpha())
	put(int64(m.Capacity()))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(m.RebuildFrac()))
	put(st.Epoch)
	put(int64(st.Pending))
	put(st.Round)
	put(st.PhaseRounds)
	put(st.Phase)
	put(int64(st.Peak))
	put(st.Led.Serve)
	put(st.Led.Move)
	put(st.Led.Fetched)
	put(st.Led.Evicted)
	put(int64(ids))
	for s := 0; s < ids; s++ {
		var flags byte
		if st.Live[s] {
			flags |= 1
		}
		if st.InSnap[s] {
			flags |= 2
		}
		if st.Cached[s] {
			flags |= 4
		}
		payload = append(payload, flags)
		put(int64(st.Parent[s]) + 1)
		if st.Live[s] {
			put(st.Cnt[s])
		}
	}
	out := make([]byte, 0, headerLen+len(payload))
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint16(out, Version)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	return out, nil
}

// Verify checks the envelope and payload checksum without decoding any
// state. It is cheap enough to run on every periodic checkpoint.
func Verify(data []byte) error {
	_, err := payload(data)
	return err
}

// payload validates the envelope and returns the checksummed payload.
func payload(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrFormat, len(data), headerLen)
	}
	if [6]byte(data[:6]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint16(data[6:8]); v != Version {
		return nil, fmt.Errorf("%w: unsupported format version %d (have %d)", ErrFormat, v, Version)
	}
	p := data[headerLen:]
	if want, got := binary.LittleEndian.Uint32(data[8:12]), crc32.ChecksumIEEE(p); want != got {
		return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, want, got)
	}
	return p, nil
}

// reader is a bounds-checked payload cursor: the first failed read
// latches an error and every later read is a no-op, so decode logic
// can stay linear and check once at the end.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrFormat}, args...)...)
	}
}

func (r *reader) uvarint(field string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated %s at offset %d", field, r.off)
		return 0
	}
	r.off += n
	return v
}

// nonneg reads a uvarint that must fit a non-negative int64.
func (r *reader) nonneg(field string) int64 {
	v := r.uvarint(field)
	if v > math.MaxInt64 {
		r.fail("%s overflows int64", field)
		return 0
	}
	return int64(v)
}

func (r *reader) byte(field string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated %s at offset %d", field, r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) float64(field string) float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated %s at offset %d", field, r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// decode parses a verified payload into configuration and state.
func decode(p []byte) (core.MutableConfig, *core.MutableState, error) {
	r := &reader{b: p}
	var cfg core.MutableConfig
	cfg.Alpha = r.nonneg("alpha")
	cfg.Capacity = int(r.nonneg("capacity"))
	cfg.RebuildFrac = r.float64("rebuildFrac")
	st := &core.MutableState{
		Led: cache.Ledger{Alpha: cfg.Alpha},
	}
	st.Epoch = r.nonneg("epoch")
	st.Pending = int(r.nonneg("pending"))
	st.Round = r.nonneg("round")
	st.PhaseRounds = r.nonneg("phaseRounds")
	st.Phase = r.nonneg("phase")
	st.Peak = int(r.nonneg("peak"))
	st.Led.Serve = r.nonneg("serve")
	st.Led.Move = r.nonneg("move")
	st.Led.Fetched = r.nonneg("fetched")
	st.Led.Evicted = r.nonneg("evicted")
	ids := r.nonneg("ids")
	if r.err != nil {
		return cfg, nil, r.err
	}
	// Each id costs at least two payload bytes (flags + parent), which
	// bounds the allocation a crafted-but-checksummed count can force.
	if ids < 1 || ids > int64(len(p)) {
		return cfg, nil, fmt.Errorf("%w: id count %d inconsistent with payload size %d", ErrFormat, ids, len(p))
	}
	st.Parent = make([]tree.NodeID, ids)
	st.Live = make([]bool, ids)
	st.InSnap = make([]bool, ids)
	st.Cnt = make([]int64, ids)
	st.Cached = make([]bool, ids)
	for s := int64(0); s < ids; s++ {
		flags := r.byte("flags")
		if flags > 7 {
			r.fail("unknown flag bits %08b on id %d", flags, s)
		}
		st.Live[s] = flags&1 != 0
		st.InSnap[s] = flags&2 != 0
		st.Cached[s] = flags&4 != 0
		parent := r.nonneg("parent")
		if parent > ids {
			r.fail("parent %d of id %d out of range", parent-1, s)
		}
		st.Parent[s] = tree.NodeID(parent - 1)
		if st.Live[s] {
			st.Cnt[s] = r.nonneg("counter")
		}
		if r.err != nil {
			return cfg, nil, r.err
		}
	}
	if r.off != len(p) {
		return cfg, nil, fmt.Errorf("%w: %d trailing bytes after state", ErrFormat, len(p)-r.off)
	}
	return cfg, st, nil
}

// Restore reconstructs a live instance from a snapshot, with the
// configuration (alpha, capacity, rebuild fraction) the capture
// recorded and no observer attached. Corrupted or inconsistent bytes
// return an error; Restore never panics on input data.
func Restore(data []byte) (*core.MutableTC, error) {
	p, err := payload(data)
	if err != nil {
		return nil, err
	}
	cfg, st, err := decode(p)
	if err != nil {
		return nil, err
	}
	return core.RestoreMutable(cfg, st)
}

// RestoreInto replaces m's state in place with a captured snapshot,
// keeping m's configuration and attached observer. The snapshot's
// alpha and capacity must match m's; m is untouched on any error.
func RestoreInto(m *core.MutableTC, data []byte) error {
	p, err := payload(data)
	if err != nil {
		return err
	}
	cfg, st, err := decode(p)
	if err != nil {
		return err
	}
	if cfg.Alpha != m.Alpha() || cfg.Capacity != m.Capacity() {
		return fmt.Errorf("snapshot: configuration mismatch: snapshot has alpha=%d capacity=%d, instance has alpha=%d capacity=%d",
			cfg.Alpha, cfg.Capacity, m.Alpha(), m.Capacity())
	}
	return m.ImportState(st)
}

// Checkpointed adapts a core.MutableTC to the engine's optional
// Checkpointer surface: Snapshot captures the full observable state
// through the codec, Restore rebuilds it in place (atomic on error)
// and VerifySnapshot integrity-checks a blob without decoding state —
// the engine runs it on every periodic checkpoint so fault-corrupted
// bytes are rejected at capture time, while the previous good
// checkpoint and its journal stay in force.
type Checkpointed struct{ *core.MutableTC }

// Snapshot captures the instance's state as a self-describing blob.
func (c Checkpointed) Snapshot() ([]byte, error) { return Capture(c.MutableTC) }

// Restore replaces the instance's state from a blob, in place.
func (c Checkpointed) Restore(data []byte) error { return RestoreInto(c.MutableTC, data) }

// VerifySnapshot checks a blob's integrity without decoding state.
func (c Checkpointed) VerifySnapshot(data []byte) error { return Verify(data) }
