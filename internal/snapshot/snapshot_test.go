package snapshot_test

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/tree"
)

// step is one operation of a generated churn stream: a request to a
// live node, an insert under a live parent, or a delete of a live
// non-root node.
type step struct {
	isMut  bool
	insert bool
	node   tree.NodeID
	kind   trace.Kind
}

// shadow mirrors the live topology so the generator only emits valid
// operations (the instances under test validate them again).
type shadow struct {
	live   []bool
	kids   []int
	parent []tree.NodeID
}

func newShadow(t *tree.Tree) *shadow {
	n := t.Len()
	s := &shadow{live: make([]bool, n), kids: make([]int, n), parent: make([]tree.NodeID, n)}
	for v := 0; v < n; v++ {
		s.live[v] = true
		s.kids[v] = t.Degree(tree.NodeID(v))
		s.parent[v] = t.Parent(tree.NodeID(v))
	}
	return s
}

func (s *shadow) pickLive(rng *rand.Rand) tree.NodeID {
	for {
		v := tree.NodeID(rng.Intn(len(s.live)))
		if s.live[v] {
			return v
		}
	}
}

// pickDeletable returns a live non-root leaf, or None when the tree
// has shrunk to the root.
func (s *shadow) pickDeletable(rng *rand.Rand) tree.NodeID {
	for try := 0; try < 4*len(s.live); try++ {
		v := 1 + rng.Intn(len(s.live))
		if v < len(s.live) && s.live[v] && s.kids[v] == 0 {
			return tree.NodeID(v)
		}
	}
	return tree.None
}

func (s *shadow) insert(parent tree.NodeID) {
	s.live = append(s.live, true)
	s.kids = append(s.kids, 0)
	s.parent = append(s.parent, parent)
	s.kids[parent]++
}

func (s *shadow) delete(v tree.NodeID) {
	s.live[v] = false
	s.kids[s.parent[v]]--
}

func buildTree(shape, n int) *tree.Tree {
	switch shape % 4 {
	case 0:
		return tree.Path(n)
	case 1:
		return tree.Star(n)
	case 2:
		return tree.CompleteKary(n, 2)
	default:
		return tree.CompleteKary(n, 3)
	}
}

// genSteps decodes bytes into a valid churn stream: high bytes become
// mutations, the rest requests (sign from bit 7).
func genSteps(data []byte, tr *tree.Tree, seed int64) []step {
	sh := newShadow(tr)
	rng := rand.New(rand.NewSource(seed))
	var steps []step
	for _, b := range data {
		switch {
		case b >= 250:
			p := sh.pickLive(rng)
			sh.insert(p)
			steps = append(steps, step{isMut: true, insert: true, node: p})
		case b >= 240:
			v := sh.pickDeletable(rng)
			if v == tree.None {
				continue
			}
			sh.delete(v)
			steps = append(steps, step{isMut: true, node: v})
		default:
			k := trace.Positive
			if b&0x80 != 0 {
				k = trace.Negative
			}
			steps = append(steps, step{node: sh.pickLive(rng), kind: k})
		}
	}
	return steps
}

func apply(t *testing.T, label string, m *core.MutableTC, st step) (int64, int64) {
	t.Helper()
	if st.isMut {
		if st.insert {
			if _, err := m.Insert(st.node); err != nil {
				t.Fatalf("%s: insert under %d: %v", label, st.node, err)
			}
		} else if err := m.Delete(st.node); err != nil {
			t.Fatalf("%s: delete %d: %v", label, st.node, err)
		}
		return 0, 0
	}
	return m.Serve(trace.Request{Node: st.node, Kind: st.kind})
}

// assertEqualState compares the full observable state of two
// instances: cursors, ledger, id space, per-node counters and cached
// flags, cache membership.
func assertEqualState(t *testing.T, label string, a, b *core.MutableTC) {
	t.Helper()
	if a.Round() != b.Round() || a.Phase() != b.Phase() || a.Epoch() != b.Epoch() || a.Pending() != b.Pending() {
		t.Fatalf("%s: cursors differ: round %d/%d phase %d/%d epoch %d/%d pending %d/%d",
			label, a.Round(), b.Round(), a.Phase(), b.Phase(), a.Epoch(), b.Epoch(), a.Pending(), b.Pending())
	}
	if a.Ledger() != b.Ledger() {
		t.Fatalf("%s: ledgers differ: %+v vs %+v", label, a.Ledger(), b.Ledger())
	}
	if a.CacheLen() != b.CacheLen() || a.MaxCacheLen() != b.MaxCacheLen() {
		t.Fatalf("%s: occupancy differs: len %d/%d peak %d/%d", label, a.CacheLen(), b.CacheLen(), a.MaxCacheLen(), b.MaxCacheLen())
	}
	da, db := a.Dyn(), b.Dyn()
	if da.NumIDs() != db.NumIDs() || da.Len() != db.Len() {
		t.Fatalf("%s: id space differs: ids %d/%d live %d/%d", label, da.NumIDs(), db.NumIDs(), da.Len(), db.Len())
	}
	for s := 0; s < da.NumIDs(); s++ {
		v := tree.NodeID(s)
		if da.Live(v) != db.Live(v) {
			t.Fatalf("%s: liveness of %d differs", label, s)
		}
		if !da.Live(v) {
			continue
		}
		if da.Parent(v) != db.Parent(v) {
			t.Fatalf("%s: parent of %d differs: %d vs %d", label, s, da.Parent(v), db.Parent(v))
		}
		if a.Cached(v) != b.Cached(v) {
			t.Fatalf("%s: cached flag of %d differs", label, s)
		}
		if ca, cb := a.Counter(v), b.Counter(v); ca != cb {
			t.Fatalf("%s: counter of %d differs: %d vs %d", label, s, ca, cb)
		}
	}
	ma, mb := a.CacheMembers(), b.CacheMembers()
	if len(ma) != len(mb) {
		t.Fatalf("%s: cache members differ: %v vs %v", label, ma, mb)
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("%s: cache members differ: %v vs %v", label, ma, mb)
		}
	}
}

// roundTrip runs the scenario: serve a prefix, capture, restore two
// ways (fresh instance and in-place), check state equality, corrupt
// one byte and require a decode error, then serve the identical suffix
// on original and restored instances and require identical behavior.
func roundTrip(t *testing.T, tr *tree.Tree, cfg core.MutableConfig, steps []step, cut int, corruptAt int) {
	t.Helper()
	orig := core.NewMutable(tr, cfg)
	for _, st := range steps[:cut] {
		apply(t, "orig", orig, st)
	}

	blob, err := snapshot.Capture(orig)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if err := snapshot.Verify(blob); err != nil {
		t.Fatalf("verify of fresh capture: %v", err)
	}

	// Any single corrupted byte must surface as an error, never a panic.
	if len(blob) > 0 {
		bad := append([]byte(nil), blob...)
		bad[corruptAt%len(bad)] ^= 0x40
		if err := snapshot.Verify(bad); err == nil {
			t.Fatalf("verify accepted corrupted byte %d", corruptAt%len(bad))
		}
		if _, err := snapshot.Restore(bad); err == nil {
			t.Fatalf("restore accepted corrupted byte %d", corruptAt%len(bad))
		}
		if err := snapshot.RestoreInto(core.NewMutable(tr, cfg), bad); err == nil {
			t.Fatalf("restore-into accepted corrupted byte %d", corruptAt%len(bad))
		}
	}
	for cutLen := 0; cutLen < len(blob); cutLen += 1 + len(blob)/7 {
		if _, err := snapshot.Restore(blob[:cutLen]); err == nil {
			t.Fatalf("restore accepted truncation to %d bytes", cutLen)
		}
	}

	fresh, err := snapshot.Restore(blob)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	inPlace := core.NewMutable(tr, cfg)
	for _, st := range steps[:cut/2] { // a mid-life instance, then overwritten
		apply(t, "inPlace pre", inPlace, st)
	}
	if err := snapshot.RestoreInto(inPlace, blob); err != nil {
		t.Fatalf("restore-into: %v", err)
	}
	assertEqualState(t, "after restore (fresh)", orig, fresh)
	assertEqualState(t, "after restore (in place)", orig, inPlace)

	for i, st := range steps[cut:] {
		s0, m0 := apply(t, "orig", orig, st)
		s1, m1 := apply(t, "fresh", fresh, st)
		s2, m2 := apply(t, "inPlace", inPlace, st)
		if s0 != s1 || m0 != m1 || s0 != s2 || m0 != m2 {
			t.Fatalf("suffix op %d %+v: costs diverged: orig (%d,%d) fresh (%d,%d) inPlace (%d,%d)",
				i, st, s0, m0, s1, m1, s2, m2)
		}
	}
	assertEqualState(t, "after suffix (fresh)", orig, fresh)
	assertEqualState(t, "after suffix (in place)", orig, inPlace)
}

// TestSnapshotRoundTripRandom drives longer random scenarios than the
// fuzz seeds: every tree shape, captures at several cut points
// (including mid-phase and mid-churn) and full suffix equivalence.
func TestSnapshotRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for shape := 0; shape < 4; shape++ {
		for trial := 0; trial < 3; trial++ {
			n := 8 + rng.Intn(40)
			tr := buildTree(shape, n)
			cfg := core.MutableConfig{Config: core.Config{
				Alpha:    int64(2 * (1 + rng.Intn(3))),
				Capacity: 1 + rng.Intn(n),
			}}
			data := make([]byte, 300+rng.Intn(300))
			rng.Read(data)
			steps := genSteps(data, tr, int64(shape*100+trial))
			for _, frac := range []float64{0.1, 0.5, 0.9} {
				cut := int(frac * float64(len(steps)))
				roundTrip(t, tr, cfg, steps, cut, rng.Intn(1<<20))
			}
		}
	}
}

// TestSnapshotEnvelope exercises the codec's integrity paths directly.
func TestSnapshotEnvelope(t *testing.T) {
	tr := tree.CompleteKary(15, 2)
	m := core.NewMutable(tr, core.MutableConfig{Config: core.Config{Alpha: 4, Capacity: 5}})
	for i := 0; i < 40; i++ {
		m.Serve(trace.Request{Node: tree.NodeID(i % 15), Kind: trace.Positive})
	}
	blob, err := snapshot.Capture(m)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := snapshot.Restore(nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	if _, err := snapshot.Restore(blob[:5]); err == nil {
		t.Fatal("truncated header accepted")
	}
	badMagic := append([]byte(nil), blob...)
	badMagic[0] = 'X'
	if _, err := snapshot.Restore(badMagic); err == nil {
		t.Fatal("bad magic accepted")
	}
	badVer := append([]byte(nil), blob...)
	badVer[6] = 99
	if _, err := snapshot.Restore(badVer); err == nil {
		t.Fatal("unknown version accepted")
	}

	// A trailing byte with a recomputed checksum must still be rejected
	// (the payload parser requires exact consumption).
	trailing := append([]byte(nil), blob...)
	trailing = append(trailing, 0)
	binary.LittleEndian.PutUint32(trailing[8:12], crc32.ChecksumIEEE(trailing[12:]))
	if _, err := snapshot.Restore(trailing); err == nil {
		t.Fatal("trailing payload bytes accepted")
	}

	// Config mismatch on in-place restore.
	other := core.NewMutable(tr, core.MutableConfig{Config: core.Config{Alpha: 6, Capacity: 5}})
	if err := snapshot.RestoreInto(other, blob); err == nil {
		t.Fatal("alpha mismatch accepted")
	}

	// The Checkpointed adapter round-trips through the same codec.
	ck := snapshot.Checkpointed{MutableTC: m}
	data, err := ck.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.VerifySnapshot(data); err != nil {
		t.Fatal(err)
	}
	if err := ck.Restore(data); err != nil {
		t.Fatal(err)
	}
}

// FuzzSnapshotRoundTrip pins Restore(Capture(x)) ≡ x on the full
// observable state — counters, cached set, ledger, phase, epoch,
// pending overlay — for arbitrary churn prefixes (mid-phase and
// mid-churn captures included), and that corrupted or truncated bytes
// fail with an error, never a panic. Run with
//
//	go test -fuzz FuzzSnapshotRoundTrip ./internal/snapshot
//
// for continuous fuzzing; plain `go test` executes the seed corpus.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{7, 0, 2, 9, 1, 2, 3, 240, 5, 6, 250, 8, 9, 100, 200})
	f.Add([]byte{12, 1, 4, 30, 200, 199, 244, 0, 1, 2, 3, 255, 16, 254, 17})
	f.Add([]byte{5, 2, 2, 200, 0, 0, 0, 128, 241, 128, 128, 245, 130, 7})
	f.Add([]byte{16, 3, 6, 77, 255, 254, 1, 2, 250, 3, 249, 248, 7, 251, 252, 130, 131})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip()
		}
		n := 2 + int(data[0])%14
		tr := buildTree(int(data[1]), n)
		cfg := core.MutableConfig{Config: core.Config{
			Alpha:    int64(2 * (1 + int(data[2])%3)),
			Capacity: 1 + int(data[2]/4)%n,
		}}
		steps := genSteps(data[4:], tr, int64(n))
		cut := 0
		if len(steps) > 0 {
			cut = int(data[3]) % (len(steps) + 1)
		}
		roundTrip(t, tr, cfg, steps, cut, int(data[0])+int(data[3]))
	})
}
