// FIB routing example: caching forwarding rules under longest-matching-
// prefix semantics (Section 2 of the paper).
//
// A router can hold only a fraction of its forwarding table in fast
// memory (TCAM). Rules are IP prefixes; a rule may only be cached
// together with all of its more-specific descendants, or packets would
// exit through the wrong port. This example builds a synthetic table,
// sends Zipf-skewed traffic mixed with BGP-style updates, and compares
// TC against an eager fetch-on-miss cache and the no-cache floor.
//
// Run with: go run ./examples/fibrouting
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/sim"
	"repro/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(2026))
	table, err := fib.GenerateTable(rng, fib.TableConfig{Rules: 2048})
	if err != nil {
		panic(err)
	}
	t := table.Tree()
	fmt.Printf("forwarding table: %d rules, dependency height %d\n", table.Len(), t.Height())

	// Show a few rules and a lookup.
	fmt.Println("\nsample rules:")
	for v := 1; v <= 5; v++ {
		r := table.Rule(tree.NodeID(v))
		parent := table.Rule(t.Parent(tree.NodeID(v)))
		fmt.Printf("  %-18s next-hop %-2d  (covered by %s)\n", r.Prefix, r.NextHop, parent.Prefix)
	}
	addr := table.RandomAddrIn(rng, tree.NodeID(3))
	hit := table.Lookup(addr)
	fmt.Printf("\nLPM lookup of %d.%d.%d.%d → rule %s\n",
		byte(addr>>24), byte(addr>>16), byte(addr>>8), byte(addr), table.Rule(hit).Prefix)

	// Workload: 50k packets, Zipf 1.1, 1% update churn.
	alpha := int64(8)
	capacity := 256
	w := fib.GenerateWorkload(rng, table, fib.WorkloadConfig{
		Packets: 50000, ZipfS: 1.1, UpdateRate: 0.01, Alpha: alpha,
	})
	fmt.Printf("\nworkload: %d packets, %d rule updates; switch capacity %d of %d rules\n\n",
		w.Packets, len(w.Updates), capacity, table.Len())

	algos := []sim.Algorithm{
		core.New(t, core.Config{Alpha: alpha, Capacity: capacity}),
		baseline.NewEager(t, baseline.Config{Alpha: alpha, Capacity: capacity, Policy: baseline.LRU}),
		baseline.NewNoCache(alpha),
	}
	for _, res := range sim.Compare(algos, w.Trace) {
		fmt.Printf("  %-12s total=%-8d serve=%-7d move=%-8d rule-messages=%d\n",
			res.Algorithm, res.Total(), res.Serve, res.Move, res.Fetched+res.Evicted)
	}
	fmt.Println("\nTC pays a little more in misses but orders of magnitude less in TCAM updates.")
}
