// Adversarial example: the Appendix C lower bound and the Appendix D
// construction, run end to end.
//
// Part 1 drives the adaptive paging adversary against TC for growing
// cache sizes and shows the measured competitive ratio tracking
// R = k_ONL/(k_ONL−k_OPT+1), the paper's lower bound.
//
// Part 2 replays the Appendix D "troublesome positive field" instance
// and prints the exact chronology of Figure 4 as TC executes it.
//
// Run with: go run ./examples/adversarial
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/sim"
	"repro/internal/tree"
)

func main() {
	fmt.Println("Part 1 — Appendix C: the paging adversary (k_OPT = k_ONL)")
	fmt.Println()
	alpha := int64(4)
	for _, k := range []int{4, 8, 16} {
		star := tree.Star(k + 2)
		tc := core.New(star, core.Config{Alpha: alpha, Capacity: k})
		adv := lowerbound.NewPagingAdversary(star, alpha, 200*k)
		res, _ := sim.RunAdversarial(tc, adv)
		optUB := lowerbound.MirroredOptCost(adv.PageSequence(), k, alpha)
		fmt.Printf("  k=%2d: TC cost %7d vs offline ≤ %6d → ratio %5.2f (R = %d)\n",
			k, res.Total(), optUB, float64(res.Total())/float64(optUB), k)
	}

	fmt.Println()
	fmt.Println("Part 2 — Appendix D: the troublesome positive field (s=7, α=8)")
	fmt.Println()
	c := lowerbound.NewConstructionD(7, 8)
	logger := &chronicle{c: c}
	tc := core.New(c.Tree, core.Config{Alpha: c.Alpha, Capacity: c.Tree.Len(), Observer: logger})
	for _, req := range c.Input {
		tc.Serve(req)
	}
	fmt.Println()
	fmt.Printf("the final field spans all %d nodes but its first %d requests are\n",
		c.Tree.Len(), int(int64(c.S+1)*c.Alpha)-c.Leaves)
	fmt.Printf("confined to the %d nodes of T1∪{r}: no legal shifting strategy can\n", c.S+1)
	fmt.Println("spread α requests to every node — positive fields shift only approximately.")
}

// chronicle prints TC's changesets as Figure 4 milestones.
type chronicle struct {
	core.NopObserver
	c *lowerbound.ConstructionD
	n int
}

func (l *chronicle) OnApply(round int64, x []tree.NodeID, positive bool) {
	l.n++
	kind := "evicts"
	if positive {
		kind = "fetches"
	}
	label := ""
	switch {
	case round == int64(l.c.Tree.Len())*l.c.Alpha:
		label = "(preamble: whole tree cached)"
	case round == l.c.EvictT1R:
		label = "(stage 1: T1 ∪ {r} leaves the cache)"
	case round == l.c.EvictT2:
		label = "(stage 3: T2 leaves the cache)"
	case round == l.c.FetchAll:
		label = "(stage 5: the whole tree returns)"
	}
	fmt.Printf("  round %5d: TC %s %2d nodes %s\n", round, kind, len(x), label)
}
