// SDN controller example: the event-driven controller/switch split of
// Figure 1, driven through the fib.System wrapper rather than a
// pre-generated trace.
//
// The controller receives cache misses (packets redirected by the
// switch's default rule) and routing-protocol updates, runs TC in
// software, and pushes rule install/remove messages to the switch. The
// example prints the switch's hit ratio and message load as traffic
// shifts between hot prefixes — the scenario that motivates caching
// with dependencies in the first place.
//
// Run with: go run ./examples/sdncontroller
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/stats"
	"repro/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	table, err := fib.GenerateTable(rng, fib.TableConfig{Rules: 4096})
	if err != nil {
		panic(err)
	}
	t := table.Tree()
	alpha := int64(8)
	capacity := 384

	tc := core.New(t, core.Config{Alpha: alpha, Capacity: capacity})
	sys := fib.NewSystem(table, tc, alpha)
	fmt.Printf("controller managing %d rules; switch TCAM holds %d\n\n", table.Len(), capacity)

	// Three traffic epochs, each with its own hot working set of rules,
	// separated by bursts of BGP churn that touch the hot rules.
	epochs := 3
	perEpoch := 30000
	hotSize := 24
	tb := stats.NewTable("epoch", "packets", "hitRatio", "redirects", "ruleMsgs", "updates")
	var prev fib.SystemStats
	for e := 0; e < epochs; e++ {
		// Pick this epoch's hot rules.
		hot := make([]tree.NodeID, hotSize)
		for i := range hot {
			hot[i] = tree.NodeID(1 + rng.Intn(table.Len()-1))
		}
		zip := stats.NewZipf(rng, hotSize, 1.1, false)
		for p := 0; p < perEpoch; p++ {
			rule := hot[zip.Draw()]
			sys.Packet(table.RandomAddrIn(rng, rule))
		}
		// End-of-epoch churn: the routing protocol updates some hot
		// rules (the controller relays them; cached copies cost α).
		for u := 0; u < 8; u++ {
			sys.Update(hot[rng.Intn(hotSize)])
		}
		cur := sys.Stats
		tb.AddRow(e+1, cur.Packets-prev.Packets,
			fmt.Sprintf("%.3f", float64(cur.SwitchHits-prev.SwitchHits)/float64(cur.Packets-prev.Packets)),
			cur.Redirects-prev.Redirects, cur.RuleMessages-prev.RuleMessages, cur.Updates-prev.Updates)
		prev = cur
	}
	tb.Render(fmtWriter{})
	fmt.Printf("\ntotal controller cost (tree-caching model): %d\n", tc.Ledger().Total())
	fmt.Println("hit ratio recovers each epoch as TC re-learns the hot set, while rule", "messages stay bounded by the rent-or-buy rule.")
}

// fmtWriter adapts fmt printing to io.Writer for the table.
type fmtWriter struct{}

func (fmtWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
