// Quickstart: the smallest complete use of the treecache public API.
//
// It builds a tiny dependency tree, runs TC by hand through a few
// requests, and shows how the rent-or-buy rule and the subforest
// constraint play out — the cache only ever holds whole subtrees, and
// nothing is fetched until its counters have paid for the move.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/treecache"
)

func main() {
	// A perfect binary tree of 7 nodes:
	//
	//	        0
	//	      /   \
	//	     1     2
	//	    / \   / \
	//	   3   4 5   6
	//
	// Caching node 1 requires caching 3 and 4 too (think: an IP rule
	// can only be cached together with its more-specific sub-rules).
	t := treecache.CompleteKary(7, 2)
	c := treecache.New(t, treecache.Options{Alpha: 4, Capacity: 5})

	fmt.Println("requesting leaf 3 four times (α=4)...")
	for i := 0; i < 4; i++ {
		serve, move := c.Request(treecache.Pos(3))
		fmt.Printf("  round %d: serve=%d move=%d cached(3)=%v\n", i+1, serve, move, c.Cached(3))
	}
	fmt.Printf("cache: %v (leaf 3 was fetched once its counter reached α)\n\n", c.Members())

	fmt.Println("requesting inner node 1 (needs the whole missing subtree {1,4})...")
	for i := 0; i < 8; i++ {
		c.Request(treecache.Pos(1))
	}
	fmt.Printf("cache: %v — a subforest of T, as always\n\n", c.Members())

	fmt.Println("updates arrive at node 1 (negative requests)...")
	for i := 0; i < 12; i++ {
		c.Request(treecache.Neg(1))
	}
	fmt.Printf("cache after churn: %v\n", c.Members())
	fmt.Printf("total cost: %d (serve %d + move %d), phases: %d\n",
		c.Cost(), c.Ledger().Serve, c.Ledger().Move, c.Phases())
}
