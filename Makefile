GO  ?= go
BIN ?= bin

.PHONY: build test race e2e crash-drill bench-smoke bench-compare clean

# build compiles every package and drops the binaries (treecached
# daemon, treesim replayer/driver, experiments harness) into $(BIN).
build:
	$(GO) build ./...
	mkdir -p $(BIN)
	$(GO) build -o $(BIN)/ ./cmd/treecached ./cmd/treesim ./cmd/experiments

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# e2e runs the binary-level SIGTERM-restart parity drill: boot
# treecached with a state dir, replay half a workload over loopback
# TCP, drain on SIGTERM, restart from the checkpoint, replay the rest,
# and verify the cumulative served-cost ledger matches an
# uninterrupted local run (see scripts/e2e_drill.sh).
e2e: build
	scripts/e2e_drill.sh $(BIN)

# crash-drill runs the binary-level kill -9 drill: boot treecached
# with the write-ahead log on, SIGKILL it at three random points while
# treesim streams a workload, and verify every acknowledged batch
# survives recovery with the ledger matching an uninterrupted run cost
# for cost (see scripts/crash_drill.sh).
crash-drill: build
	scripts/crash_drill.sh $(BIN)

# bench-smoke pins the benchmark grids at a fixed small iteration
# count so the bench code cannot rot; real perf deltas come from
# `experiments -bench-compare old.json new.json`.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTC|BenchmarkEngineFleet|BenchmarkEngineBurst|BenchmarkDaemonLoopback|BenchmarkTreePar' -benchtime 100x -benchmem .

# bench-compare gates a perf PR mechanically: record OLD=... from the
# base commit and NEW=... from the candidate (both via
# `experiments -bench-json file.json`), then compare with the shared
# ±30% container-drift tolerance. Exits non-zero on regressions.
OLD ?= BENCH_core.json
NEW ?= bench_new.json
bench-compare:
	$(GO) run ./cmd/experiments -bench-compare -bench-tolerance 0.3 $(OLD) $(NEW)

clean:
	rm -rf $(BIN)
