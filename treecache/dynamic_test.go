package treecache_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/treecache"
	"repro/treecache/inspect"
)

// TestFacadeDynamicTopology drives the public dynamic surface end to
// end: ChurnWorkload generation, the churn text format round-trip,
// ServeChurn replay, Insert/Delete, Engine.ApplyTopology equivalence
// and the inspect.Topology dump.
func TestFacadeDynamicTopology(t *testing.T) {
	tr := treecache.CompleteKary(127, 2)
	rng := rand.New(rand.NewSource(7))
	ct := treecache.ChurnWorkload(rng, tr, treecache.ChurnWorkloadConfig{
		Rounds: 3000, MutEvery: 8, ZipfS: 1.0, NegFrac: 0.3,
	})
	var buf bytes.Buffer
	if err := ct.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := treecache.ReadChurnTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opts := treecache.Options{Alpha: 4, Capacity: 48}
	c := treecache.New(tr, opts)
	serve, move, err := c.ServeChurn(back)
	if err != nil {
		t.Fatal(err)
	}
	if serve == 0 || move == 0 {
		t.Fatalf("churn replay cost (%d,%d) looks degenerate", serve, move)
	}
	ti := inspect.Topology(c)
	if ti.Live != c.Len() || ti.Cached != c.CacheLen() {
		t.Fatalf("inspect.Topology %+v disagrees with the cache", ti)
	}
	if ti.Epoch == 0 {
		t.Fatalf("3000-op churn replay never rebuilt: %v", ti)
	}

	// Manual mutations through the facade.
	v, err := c.Insert(0)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Live(v) {
		t.Fatalf("inserted node %d not live", v)
	}
	if _, _, err := c.ServeChurn(treecache.ChurnTrace{
		trace2op(treecache.Pos(v)), trace2op(treecache.Pos(v)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(v); err != nil {
		t.Fatal(err)
	}
	if c.Live(v) {
		t.Fatalf("deleted node %d still live", v)
	}

	// Fleet equivalence: the same churn stream through an engine shard
	// (batches + ApplyTopology control messages) must land on the same
	// ledger and cache as the sequential replay above.
	eng := treecache.NewEngine([]*treecache.Tree{tr}, opts, treecache.EngineOptions{})
	defer eng.Close()
	var batch treecache.Trace
	flush := func() {
		if len(batch) > 0 {
			if err := eng.SubmitTrace(0, append(treecache.Trace(nil), batch...)); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	for _, op := range back {
		if op.IsMut {
			flush()
			if err := eng.ApplyTopology(0, []treecache.Mutation{op.Mut}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		batch = append(batch, op.Req)
	}
	flush()
	eng.Drain()
	seq := treecache.New(tr, opts)
	if _, _, err := seq.ServeChurn(back); err != nil {
		t.Fatal(err)
	}
	if eng.Shard(0).Ledger() != seq.Ledger() {
		t.Fatalf("engine churn ledger %+v != sequential %+v", eng.Shard(0).Ledger(), seq.Ledger())
	}
	a, b := eng.Shard(0).Members(), seq.Members()
	if len(a) != len(b) {
		t.Fatalf("cache sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("caches differ at %d", i)
		}
	}
	st := eng.Stats()
	if st.TopoErrs != 0 || st.TopoApplied == 0 {
		t.Fatalf("topology stats: %+v", st)
	}
}

func trace2op(r treecache.Request) treecache.ChurnOp { return treecache.ChurnOp{Req: r} }
