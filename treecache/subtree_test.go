package treecache

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/treepar"
)

// TestEngineSubtreeShards pins the EngineOptions.SubtreeShards
// plumbing: the fleet swaps each partitionable shard algorithm for an
// intra-tree parallel instance (trees too small or too path-like stay
// sequential), serves a multi-tenant workload through it with exactly
// the sequential costs and cache contents, and actually dispatches
// parallel waves on the shards with real branching.
func TestEngineSubtreeShards(t *testing.T) {
	// Partitioned instances gate waves on the GOMAXPROCS setting (a
	// single processor cannot repay the barrier overhead); raise it so
	// the plumbing test dispatches real waves even on a one-core host.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(8))
	trees := []*Tree{
		CompleteKary(2047, 2), // partitions and parallelizes
		Path(64),              // no off-path heads: stays wave-free
	}
	opts := Options{Alpha: 4, Capacity: 400}
	mt := MultiTenantWorkload(rng, trees, MultiTenantConfig{
		Rounds: 30000, TenantS: 1.1, NodeS: 1.0, NegFrac: 0.3, BurstFrac: 0.05, BurstLen: 4,
	})
	eng := NewEngine(trees, opts, EngineOptions{SubtreeShards: 4})
	defer eng.Close()
	if err := eng.SubmitMulti(mt, 512); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	st := eng.Stats()
	if st.Rounds != int64(len(mt)) {
		t.Fatalf("served %d rounds, want %d", st.Rounds, len(mt))
	}
	for i, split := range mt.Split(len(trees)) {
		seq := New(trees[i], opts)
		for _, r := range split {
			seq.Request(r)
		}
		if got, want := st.Shards[i].Total(), seq.Cost(); got != want {
			t.Fatalf("shard %d cost %d, sequential cache cost %d", i, got, want)
		}
		got, want := eng.Shard(i).Members(), seq.Members()
		if len(got) != len(want) {
			t.Fatalf("shard %d cache size %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("shard %d cache differs at %d", i, j)
			}
		}
	}
	// The engine must have swapped in the partitioned instances, and
	// the branching tenant must have served real waves.
	par, ok := eng.e.Algorithm(0).(*treepar.TC)
	if !ok {
		t.Fatalf("shard 0 algorithm is %T, want *treepar.TC", eng.e.Algorithm(0))
	}
	if ps := par.Stats(); ps.Waves == 0 {
		t.Fatalf("shard 0 dispatched no parallel waves: %+v", ps)
	}
	if _, ok := eng.e.Algorithm(1).(*treepar.TC); !ok {
		t.Fatalf("shard 1 should still wrap (a disabled partition serves sequentially)")
	}

	// An observer-bearing fleet must decline partitioning entirely.
	obsOpts := opts
	obsOpts.Observer = core.NopObserver{}
	eng2 := NewEngine([]*Tree{CompleteKary(255, 2)}, obsOpts, EngineOptions{SubtreeShards: 4, Parallelism: 1})
	defer eng2.Close()
	if _, ok := eng2.e.Algorithm(0).(*treepar.TC); ok {
		t.Fatalf("observer-bearing shard was partitioned")
	}
}
