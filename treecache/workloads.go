package treecache

import (
	"math/rand"

	"repro/internal/trace"
)

// Workload generators, re-exported for library users. All are
// deterministic functions of the supplied rng.

// ZipfTrace draws n positive requests over all nodes with Zipf
// exponent s (popularity ranks randomly permuted).
func ZipfTrace(rng *rand.Rand, t *Tree, n int, s float64) Trace {
	return trace.ZipfNodes(rng, t, n, s)
}

// ZipfLeafTrace draws n positive requests over the leaves only — the
// typical shape of traffic to most-specific forwarding rules.
func ZipfLeafTrace(rng *rand.Rand, t *Tree, n int, s float64) Trace {
	return trace.ZipfLeaves(rng, t, n, s)
}

// UniformTrace draws n positive requests uniformly over all nodes.
func UniformTrace(rng *rand.Rand, t *Tree, n int) Trace {
	return trace.UniformPositive(rng, t, n)
}

// ChurnConfig configures UpdateChurnTrace; see the field documentation
// in the underlying type.
type ChurnConfig = trace.ChurnConfig

// UpdateChurnTrace interleaves Zipf traffic with bursts of negative
// requests (rule-update churn on a fixed topology, Appendix B of the
// paper). For topology churn — announce/withdraw events that mutate
// the rule tree itself — see ChurnWorkload and the ChurnTrace type.
func UpdateChurnTrace(rng *rand.Rand, t *Tree, cfg ChurnConfig) Trace {
	return trace.Churn(rng, t, cfg)
}

// MixedTrace is the fuzzing workload: uniform nodes, random signs.
func MixedTrace(rng *rand.Rand, t *Tree, n int) Trace {
	return trace.RandomMixed(rng, t, n)
}

// BurstsConfig configures BurstTrace; see the field documentation in
// the underlying type.
type BurstsConfig = trace.BurstsConfig

// BurstTrace generates FIB-update-storm traffic: runs of identical
// requests (repeated hits on one trie chain, α-negative update storms)
// with Zipf-drawn targets — the workload Cache.ServeBatch coalesces.
func BurstTrace(rng *rand.Rand, t *Tree, cfg BurstsConfig) Trace {
	return trace.Bursts(rng, t, cfg)
}
