// Package inspect is the public API of the analysis instrumentation
// (Section 5 of the paper): attach a Recorder to a TC cache to
// reconstruct the event space of each phase — the fields whose
// requests triggered each fetch/eviction, the open field F∞, and k_P —
// then verify the paper's invariants or render the space as ASCII
// (Figure 2/3 style).
//
// Typical use:
//
//	rec := inspect.NewRecorder(t, alpha)
//	c := treecache.New(t, treecache.Options{Alpha: alpha, Capacity: k, Observer: rec})
//	... serve requests ...
//	for _, p := range rec.Finish(c.CacheLen()) {
//	    if err := inspect.CheckFields(p, alpha); err != nil { ... }
//	    inspect.RenderEventSpace(os.Stdout, t, p, 120)
//	}
package inspect

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/tree"
	"repro/treecache"
)

// Recorder implements treecache.Observer and reconstructs phases.
type Recorder = analysis.Recorder

// NewRecorder returns a Recorder for a run over t with cost α.
func NewRecorder(t *tree.Tree, alpha int64) *Recorder { return analysis.NewRecorder(t, alpha) }

// Phase is one reconstructed TC phase (fields, open field, k_P).
type Phase = analysis.Phase

// Field is the slot set behind one changeset application.
type Field = analysis.Field

// Slot is one occupied (node, round) cell of the event space.
type Slot = analysis.Slot

// Distribution maps field nodes to their requests after a shift.
type Distribution = analysis.Distribution

// CheckFields verifies Observation 5.2 on every field of the phase.
func CheckFields(p *Phase, alpha int64) error { return analysis.CheckFields(p, alpha) }

// CheckCostAccounting verifies the Lemma 5.3 bound on the phase and
// returns (cost, bound).
func CheckCostAccounting(p *Phase, alpha int64) (int64, int64, error) {
	return analysis.CheckCostAccounting(p, alpha)
}

// Periods verifies the p_out = p_in + k_P identity and returns the
// period counts.
func Periods(p *Phase) (pout, pin int, err error) { return analysis.Periods(p) }

// ShiftNegative applies the Corollary 5.8 up-shift (every node of the
// field ends with exactly α requests).
func ShiftNegative(t *tree.Tree, f *Field, alpha int64) (Distribution, error) {
	return analysis.ShiftNegative(t, f, alpha)
}

// ShiftPositive applies the repaired Lemma 5.9/5.10 down-shift and
// verifies the ≥ size/(2·layers) guarantee.
func ShiftPositive(t *tree.Tree, f *Field, alpha int64) (analysis.PositiveShiftResult, error) {
	return analysis.ShiftPositive(t, f, alpha)
}

// RenderEventSpace draws the phase in the style of the paper's
// Figure 2 (maxCols truncates wide phases; 0 means unlimited).
func RenderEventSpace(w io.Writer, t *tree.Tree, p *Phase, maxCols int) {
	analysis.RenderEventSpace(w, t, p, maxCols)
}

// RenderPeriods draws one node's alternating in/out periods
// (Figure 3).
func RenderPeriods(w io.Writer, p *Phase, v tree.NodeID) { analysis.RenderPeriods(w, p, v) }

// TopologyInfo summarises a dynamic cache's topology state: the
// current epoch (how many state-migrating snapshot rebuilds have
// run), the pending-mutation count held by the overlay, and the live
// node and cache occupancy.
type TopologyInfo struct {
	Epoch    int64 // topology epoch of the current snapshot
	Pending  int   // mutations absorbed since the last rebuild
	Live     int   // live nodes of the current topology
	Cached   int   // current cache occupancy
	MaxCache int   // peak occupancy since the last Reset
}

// String renders a one-line dump.
func (ti TopologyInfo) String() string {
	return fmt.Sprintf("epoch=%d pending=%d live=%d cached=%d peak=%d",
		ti.Epoch, ti.Pending, ti.Live, ti.Cached, ti.MaxCache)
}

// Topology dumps a cache's dynamic-topology state.
func Topology(c *treecache.Cache) TopologyInfo {
	return TopologyInfo{
		Epoch:    c.Epoch(),
		Pending:  c.PendingMutations(),
		Live:     c.Len(),
		Cached:   c.CacheLen(),
		MaxCache: c.MaxCacheLen(),
	}
}
