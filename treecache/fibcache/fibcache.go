// Package fibcache is the public API of the FIB-caching application
// (Section 2 of the paper): IPv4 forwarding tables as dependency
// trees, longest-matching-prefix lookup, the controller/switch split
// of Figure 1, and packet/update workload generation.
//
// Typical use:
//
//	rng := rand.New(rand.NewSource(1))
//	table, _ := fibcache.GenerateTable(rng, fibcache.TableConfig{Rules: 4096})
//	tc := treecache.New(table.Tree(), treecache.Options{Alpha: 8, Capacity: 256})
//	sys := fibcache.NewSystem(table, tc, 8)
//	sys.Packet(0x0A010203) // a packet; hits the cache or redirects
//	fmt.Println(sys.Stats.HitRatio())
package fibcache

import (
	"math/rand"

	"repro/internal/fib"
	"repro/internal/sim"
)

// Prefix is an IPv4 prefix (top Len bits of Addr).
type Prefix = fib.Prefix

// ParsePrefix parses "a.b.c.d/len" notation.
func ParsePrefix(s string) (Prefix, error) { return fib.ParsePrefix(s) }

// Rule is a forwarding rule: a prefix plus a next-hop action.
type Rule = fib.Rule

// Table is an immutable rule table with its dependency tree; rule i is
// tree node i and node 0 is the default rule.
type Table = fib.Table

// NewTable builds a table from rules (a default rule is added if
// missing; duplicates are rejected).
func NewTable(rules []Rule) (*Table, error) { return fib.NewTable(rules) }

// TableConfig parameterises GenerateTable.
type TableConfig = fib.TableConfig

// GenerateTable builds a synthetic rule table with a realistic
// provider/subnet nesting structure. Deterministic in rng.
func GenerateTable(rng *rand.Rand, cfg TableConfig) (*Table, error) {
	return fib.GenerateTable(rng, cfg)
}

// DynamicTable is a rule table under route churn: Add/Withdraw map
// announce/withdraw events onto the dependency tree's online mutations
// (covered prefixes reparent below a new covering rule); see
// fib.DynamicTable.
type DynamicTable = fib.DynamicTable

// NewDynamicTable binds a generated table to a dynamic cache instance
// built over its dependency tree (core.NewMutable).
var NewDynamicTable = fib.NewDynamicTable

// WorkloadConfig parameterises GenerateWorkload.
type WorkloadConfig = fib.WorkloadConfig

// Workload is a generated packet/update stream with its tree-caching
// trace.
type Workload = fib.Workload

// GenerateWorkload draws Zipf-skewed packets interleaved with update
// bursts over the table. Deterministic in rng.
func GenerateWorkload(rng *rand.Rand, tb *Table, cfg WorkloadConfig) *Workload {
	return fib.GenerateWorkload(rng, tb, cfg)
}

// System is the controller/switch pair of Figure 1 wrapping a caching
// algorithm.
type System = fib.System

// SystemStats aggregates the switch-side counters.
type SystemStats = fib.SystemStats

// NewSystem wraps an algorithm (e.g. a *treecache.Cache) into the
// controller/switch simulation.
func NewSystem(tb *Table, algo sim.Algorithm, alpha int64) *System {
	return fib.NewSystem(tb, algo, alpha)
}

// SwitchDecision is the outcome of a cached-subset lookup.
type SwitchDecision = fib.SwitchDecision

// ModelCosts compares the Appendix B update-cost models on one run.
type ModelCosts = fib.ModelCosts

// CompareModels accounts a run under both the chunk and the penalty
// update-cost models (Appendix B; they agree within ×2).
func CompareModels(w *Workload, algo sim.Algorithm, alpha int64) ModelCosts {
	return fib.CompareModels(w, algo, alpha)
}
