package treecache_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/treecache"
	"repro/treecache/fibcache"
	"repro/treecache/inspect"
)

// TestPublicFIBFlow exercises the whole public surface an external
// user would touch for the paper's application: generate a table,
// wrap a TC cache into the controller/switch system, drive packets
// and updates, and compare the Appendix B cost models.
func TestPublicFIBFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	table, err := fibcache.GenerateTable(rng, fibcache.TableConfig{Rules: 500})
	if err != nil {
		t.Fatal(err)
	}
	alpha := int64(8)
	c := treecache.New(table.Tree(), treecache.Options{Alpha: alpha, Capacity: 64})
	sys := fibcache.NewSystem(table, c, alpha)
	for i := 0; i < 3000; i++ {
		sys.Packet(rng.Uint32())
	}
	if sys.Stats.Packets != 3000 || sys.Stats.SwitchHits+sys.Stats.Redirects != 3000 {
		t.Fatalf("stats: %+v", sys.Stats)
	}
	w := fibcache.GenerateWorkload(rng, table, fibcache.WorkloadConfig{
		Packets: 2000, ZipfS: 1.0, UpdateRate: 0.05, Alpha: alpha,
	})
	c.Reset()
	mc := fibcache.CompareModels(w, c, alpha)
	if r := mc.Ratio(); r < 0.5 || r > 2 {
		t.Fatalf("model ratio %.3f outside Appendix B bounds", r)
	}
}

// TestPublicInspectFlow exercises the analysis surface: record a run
// through the facade, verify the invariants, render the space.
func TestPublicInspectFlow(t *testing.T) {
	tr := treecache.CompleteKary(15, 2)
	alpha := int64(4)
	rec := inspect.NewRecorder(tr, alpha)
	c := treecache.New(tr, treecache.Options{Alpha: alpha, Capacity: 6, Observer: rec})
	rng := rand.New(rand.NewSource(2))
	for _, req := range treecache.MixedTrace(rng, tr, 600) {
		c.Request(req)
	}
	phases := rec.Finish(c.CacheLen())
	if len(phases) == 0 {
		t.Fatal("no phases recorded")
	}
	for i, p := range phases {
		if err := inspect.CheckFields(p, alpha); err != nil {
			t.Fatalf("phase %d: %v", i, err)
		}
		if _, _, err := inspect.CheckCostAccounting(p, alpha); err != nil {
			t.Fatalf("phase %d: %v", i, err)
		}
		if _, _, err := inspect.Periods(p); err != nil {
			t.Fatalf("phase %d: %v", i, err)
		}
		for _, f := range p.Fields {
			var err error
			if f.Positive {
				_, err = inspect.ShiftPositive(tr, f, alpha)
			} else {
				_, err = inspect.ShiftNegative(tr, f, alpha)
			}
			if err != nil {
				t.Fatalf("phase %d: %v", i, err)
			}
		}
	}
	var buf bytes.Buffer
	inspect.RenderEventSpace(&buf, tr, phases[0], 80)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

// TestWorkloadGenerators sanity-checks the facade generators.
func TestWorkloadGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := treecache.CompleteKary(31, 2)
	if got := len(treecache.ZipfTrace(rng, tr, 100, 1.0)); got != 100 {
		t.Fatalf("ZipfTrace length %d", got)
	}
	for _, r := range treecache.ZipfLeafTrace(rng, tr, 100, 1.0) {
		if tr.Degree(r.Node) != 0 {
			t.Fatal("ZipfLeafTrace hit an inner node")
		}
	}
	if got := len(treecache.UniformTrace(rng, tr, 50)); got != 50 {
		t.Fatalf("UniformTrace length %d", got)
	}
	churn := treecache.UpdateChurnTrace(rng, tr, treecache.ChurnConfig{
		Rounds: 200, ZipfS: 1.0, UpdateFrac: 0.3, BurstLen: 4,
	})
	if len(churn) != 200 {
		t.Fatalf("ChurnTrace length %d", len(churn))
	}
	bursts := treecache.BurstTrace(rng, tr, treecache.BurstsConfig{
		Rounds: 200, RunLen: 8, ZipfS: 1.0, NegFrac: 0.5,
	})
	if len(bursts) != 200 {
		t.Fatalf("BurstTrace length %d", len(bursts))
	}
}

// TestCacheServeBatchMatchesRequest pins the public batched entry
// point against per-request serving: identical costs, phases, peak
// occupancy and final cache contents on a bursty workload.
func TestCacheServeBatchMatchesRequest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := treecache.Caterpillar(64, 2)
	input := treecache.BurstTrace(rng, tr, treecache.BurstsConfig{
		Rounds: 8000, RunLen: 12, ZipfS: 1.1, NegFrac: 0.5,
	})
	opts := treecache.Options{Alpha: 8, Capacity: 96}
	bat := treecache.New(tr, opts)
	seq := treecache.New(tr, opts)
	for lo := 0; lo < len(input); lo += 512 {
		hi := lo + 512
		if hi > len(input) {
			hi = len(input)
		}
		sb, mb := bat.ServeBatch(input[lo:hi])
		var ss, ms int64
		for _, req := range input[lo:hi] {
			s, m := seq.Request(req)
			ss += s
			ms += m
		}
		if sb != ss || mb != ms {
			t.Fatalf("chunk [%d:%d): ServeBatch cost (%d,%d) != Request (%d,%d)", lo, hi, sb, mb, ss, ms)
		}
	}
	if bat.Ledger() != seq.Ledger() {
		t.Fatalf("ledgers differ: %+v vs %+v", bat.Ledger(), seq.Ledger())
	}
	if bat.Phases() != seq.Phases() || bat.MaxCacheLen() != seq.MaxCacheLen() {
		t.Fatalf("phases/peak differ: (%d,%d) vs (%d,%d)",
			bat.Phases(), bat.MaxCacheLen(), seq.Phases(), seq.MaxCacheLen())
	}
	a, b := bat.Members(), seq.Members()
	if len(a) != len(b) {
		t.Fatalf("cache sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("caches differ at %d: %v vs %v", i, a, b)
		}
	}
}
