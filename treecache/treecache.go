// Package treecache is the public API of the Online Tree Caching
// library, a faithful implementation of
//
//	Bienkowski, Marcinkowski, Pacut, Schmid, Spyra:
//	"Online Tree Caching", SPAA 2017.
//
// The problem: items form a rooted tree T and the cache must always be
// a subforest of T — if a node v is cached, the entire subtree below it
// is cached too. Requests are positive (pay 1 if the node is not
// cached) or negative (pay 1 if it is; these model rule updates), and
// every single-node fetch or eviction costs α. The package provides:
//
//   - TC, the paper's O(h(T)·k_ONL/(k_ONL−k_OPT+1))-competitive
//     deterministic online algorithm, with the efficient counter
//     structures of Section 6 (O(h+max(h,deg)·|X|) per decision);
//   - tree builders and workload generators;
//   - eager baselines (LRU/FIFO/random dependent-set caching) and
//     offline optima (exact DP for small instances, best static cache
//     for large ones) to compare against;
//   - the FIB-caching application of Section 2 (IPv4 prefix tables,
//     longest-matching-prefix, controller/switch simulation).
//
// Quick start:
//
//	t := treecache.Path(8)                   // a chain of 8 rules
//	c := treecache.New(t, treecache.Options{Alpha: 4, Capacity: 6})
//	c.Request(treecache.Pos(7))              // positive request to the leaf
//	fmt.Println(c.Cost())                    // accumulated cost so far
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the paper-claim reproductions.
package treecache

import (
	"repro/internal/baseline"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/tree"
)

// NodeID identifies a tree node; nodes are dense integers in
// [0, Tree.Len()) and node 0 is the root.
type NodeID = tree.NodeID

// None is the absent-node sentinel (e.g. parent of the root).
const None = tree.None

// Tree is an immutable rooted tree, the universe of cacheable items.
type Tree = tree.Tree

// NewTree builds a tree from a parent vector (parents[0] must be None).
func NewTree(parents []NodeID) (*Tree, error) { return tree.New(parents) }

// Path, Star, CompleteKary and Caterpillar build canonical tree shapes.
func Path(n int) *Tree                  { return tree.Path(n) }
func Star(n int) *Tree                  { return tree.Star(n) }
func CompleteKary(n, k int) *Tree       { return tree.CompleteKary(n, k) }
func Caterpillar(spine, legs int) *Tree { return tree.Caterpillar(spine, legs) }

// Request is one round's request.
type Request = trace.Request

// Trace is a request sequence.
type Trace = trace.Trace

// Pos and Neg construct positive and negative requests.
func Pos(v NodeID) Request { return trace.Pos(v) }
func Neg(v NodeID) Request { return trace.Neg(v) }

// Ledger carries the accumulated serve/move costs of an algorithm.
type Ledger = cache.Ledger

// Algorithm is the interface shared by TC, the baselines and replayed
// offline solutions; see sim.Algorithm.
type Algorithm = sim.Algorithm

// Options configures a Cache.
type Options struct {
	// Alpha is the per-node fetch/evict cost α: an even integer ≥ 2
	// (the paper's convention; model costs scale linearly in α).
	Alpha int64
	// Capacity is the cache size k_ONL ≥ 1.
	Capacity int
	// Observer optionally receives algorithm events (see package
	// internal/core); used by the analysis instrumentation.
	Observer Observer
}

// Observer receives TC's events; see core.Observer for the contract.
type Observer = core.Observer

// Mutation is one topology mutation event (rule announce/withdraw);
// see trace.Mutation and the "+^node@parent" / "-^node" trace format.
type Mutation = trace.Mutation

// InsertMut and DeleteMut construct mutation events. An insertion's
// node id may be None to let the applying instance allocate the next
// sequential id.
func InsertMut(node, parent NodeID) Mutation { return trace.InsertMut(node, parent) }
func DeleteMut(node NodeID) Mutation         { return trace.DeleteMut(node) }

// ChurnOp and ChurnTrace interleave requests with topology mutation
// events; see trace.ChurnTrace.
type ChurnOp = trace.ChurnOp
type ChurnTrace = trace.ChurnTrace

// ReadChurnTrace parses the churn text format (requests plus mutation
// events) written by ChurnTrace.Write.
var ReadChurnTrace = trace.ReadChurn

// ChurnWorkloadConfig parameterises the route-churn workload generator.
type ChurnWorkloadConfig = trace.ChurnWorkloadConfig

// ChurnWorkload generates Zipf traffic interleaved with valid
// announce/withdraw mutation events; see trace.ChurnWorkload.
var ChurnWorkload = trace.ChurnWorkload

// Cache is the user-facing handle on a running TC instance. The
// instance is dynamic: Insert and Delete mutate the rule tree while
// serving (node ids are stable across the internal snapshot rebuilds;
// see Epoch and PendingMutations).
type Cache struct {
	tc *core.MutableTC
}

// New creates a TC cache over t. It panics on invalid options (α not an
// even integer ≥ 2 or capacity < 1), mirroring the constructor
// conventions of the standard library for programmer errors.
func New(t *Tree, o Options) *Cache {
	return &Cache{tc: core.NewMutable(t, core.MutableConfig{
		Config: core.Config{Alpha: o.Alpha, Capacity: o.Capacity, Observer: o.Observer},
	})}
}

// Request serves one request and returns its serving cost (0 or 1) and
// the reorganization cost incurred at the end of the round.
func (c *Cache) Request(r Request) (serveCost, moveCost int64) { return c.tc.Serve(r) }

// Serve makes Cache itself satisfy Algorithm.
func (c *Cache) Serve(r Request) (int64, int64) { return c.tc.Serve(r) }

// ServeBatch serves a whole batch of requests — semantics identical to
// calling Request per element, in order — and returns the batch's
// total serving and movement cost. Consecutive identical requests
// (correlated bursts: α-negative update storms, repeated hits on one
// trie chain) are coalesced into closed-form counter advances, so a
// run costs O(log² n) instead of O(run·log² n). Engine shards serve
// every dispatched batch through this path.
func (c *Cache) ServeBatch(batch Trace) (serveCost, moveCost int64) { return c.tc.ServeBatch(batch) }

// MaxCacheLen returns the peak cache occupancy since the last Reset.
func (c *Cache) MaxCacheLen() int { return c.tc.MaxCacheLen() }

// Name implements Algorithm.
func (c *Cache) Name() string { return c.tc.Name() }

// Cached reports whether v is currently cached.
func (c *Cache) Cached(v NodeID) bool { return c.tc.Cached(v) }

// CacheLen returns the current cache occupancy.
func (c *Cache) CacheLen() int { return c.tc.CacheLen() }

// Members returns the cached nodes in ascending id order.
func (c *Cache) Members() []NodeID { return c.tc.CacheMembers() }

// AppendMembers appends the cached nodes (ascending ids) to dst and
// returns it — the snapshot variant for callers polling the cache on a
// hot path.
func (c *Cache) AppendMembers(dst []NodeID) []NodeID { return c.tc.AppendCacheMembers(dst) }

// Roots returns the roots of the maximal cached subtrees in ascending
// id order (the tops of the cached subforest).
func (c *Cache) Roots() []NodeID { return c.tc.CacheRoots() }

// ---------------------------------------------------------------------------
// Dynamic topology.
// ---------------------------------------------------------------------------

// Insert announces a fresh rule under live node parent and returns its
// id (ids are sequential and stable across snapshot rebuilds). If the
// parent is cached the new rule enters the cache with it (one α
// install).
func (c *Cache) Insert(parent NodeID) (NodeID, error) { return c.tc.Insert(parent) }

// InsertBetween announces a rule under parent, adopting the given live
// children of parent below it (the FIB application's LMP reparenting
// of covered prefixes); adoption migrates state through an immediate
// snapshot rebuild.
func (c *Cache) InsertBetween(parent NodeID, adopt []NodeID) (NodeID, error) {
	return c.tc.InsertBetween(parent, adopt)
}

// Delete withdraws live node v: a leaf settles its counter into its
// parent (a cached leaf is force-evicted, one α remove); an interior
// node's children lift to its parent through a migrating rebuild. The
// root is permanent.
func (c *Cache) Delete(v NodeID) error { return c.tc.Delete(v) }

// Apply replays one recorded mutation event.
func (c *Cache) Apply(m Mutation) error { return c.tc.Apply(m) }

// ApplyTopology replays a batch of mutation events (stopping at the
// first invalid one); it also makes Cache satisfy the engine's
// TopologyServer interface, so Engine.ApplyTopology reaches shard
// caches.
func (c *Cache) ApplyTopology(muts []Mutation) error { return c.tc.ApplyTopology(muts) }

// ServeChurn replays a churn trace (requests interleaved with mutation
// events) and returns its total serving and movement cost.
func (c *Cache) ServeChurn(ct ChurnTrace) (serveCost, moveCost int64, err error) {
	return c.tc.ServeChurn(ct)
}

// Epoch returns the topology epoch: how many state-migrating snapshot
// rebuilds the instance has absorbed.
func (c *Cache) Epoch() int64 { return c.tc.Epoch() }

// PendingMutations returns the number of mutations held by the overlay
// since the last rebuild.
func (c *Cache) PendingMutations() int { return c.tc.Pending() }

// Rebuild forces the amortized state-migrating rebuild now.
func (c *Cache) Rebuild() { c.tc.Rebuild() }

// Live reports whether id v names a live (announced, not withdrawn)
// node.
func (c *Cache) Live(v NodeID) bool { return c.tc.Dyn().Live(v) }

// Len returns the number of live nodes of the current topology.
func (c *Cache) Len() int { return c.tc.Dyn().Len() }

// Cost returns the total cost paid so far.
func (c *Cache) Cost() int64 { return c.tc.Ledger().Total() }

// Ledger returns the full cost breakdown.
func (c *Cache) Ledger() Ledger { return c.tc.Ledger() }

// Phases returns the number of completed TC phases.
func (c *Cache) Phases() int64 { return c.tc.Phase() }

// Reset restores the initial state (empty cache, zero cost).
func (c *Cache) Reset() { c.tc.Reset() }

// ---------------------------------------------------------------------------
// State snapshot / restore.
// ---------------------------------------------------------------------------

// Snapshot serializes the cache's full observable state — topology,
// cached set, per-node counters, cost ledger and phase cursors — into
// a versioned, checksummed blob. Together with Restore it satisfies
// the engine's Checkpointer interface, so a fleet built over
// snapshot-capable caches is supervised (see EngineOptions).
func (c *Cache) Snapshot() ([]byte, error) { return snapshot.Capture(c.tc) }

// Restore replaces the cache's state with the snapshot's. The
// instance's α must match the snapshot's; on any error (checksum,
// truncation, config mismatch) the current state is left untouched.
func (c *Cache) Restore(data []byte) error { return snapshot.RestoreInto(c.tc, data) }

// VerifySnapshot checks a snapshot's envelope and checksum without
// restoring it — the supervisor's accept gate for new checkpoints.
func (c *Cache) VerifySnapshot(data []byte) error { return snapshot.Verify(data) }

// RestoreCache reconstructs a fresh Cache from a snapshot blob: an
// instance equivalent to the one captured, no trace replay needed.
func RestoreCache(data []byte) (*Cache, error) {
	m, err := snapshot.Restore(data)
	if err != nil {
		return nil, err
	}
	return &Cache{tc: m}, nil
}

// ---------------------------------------------------------------------------
// Comparison algorithms and offline optima.
// ---------------------------------------------------------------------------

// EvictionPolicy selects baseline eviction behaviour.
type EvictionPolicy = baseline.Policy

// Baseline eviction policies.
const (
	LRU  = baseline.LRU
	FIFO = baseline.FIFO
	Rand = baseline.Rand
)

// NewEagerBaseline returns the dependent-set caching baseline
// (CacheFlow-style): fetch-on-miss with the given eviction policy. If
// evictOnUpdate is set, a paid update evicts the rule's path to its
// cached-tree root.
func NewEagerBaseline(t *Tree, alpha int64, capacity int, policy EvictionPolicy, evictOnUpdate bool) Algorithm {
	return baseline.NewEager(t, baseline.Config{
		Alpha: alpha, Capacity: capacity, Policy: policy, EvictOnUpdate: evictOnUpdate,
	})
}

// NewNoCache returns the bypass-everything baseline.
func NewNoCache(alpha int64) Algorithm { return baseline.NewNoCache(alpha) }

// Run serves a whole trace and returns the summary result.
func Run(a Algorithm, tr Trace) sim.Result { return sim.Run(a, tr) }

// Result summarises one run; see sim.Result.
type Result = sim.Result

// OfflineOptimum computes the exact offline optimum Opt(I) by dynamic
// programming over downward-closed cache states. It is exponential in
// the tree size and restricted to small trees (≤ 22 nodes); use
// BestStaticCache for large instances.
func OfflineOptimum(t *Tree, input Trace, capacity int, alpha int64) int64 {
	return opt.Exact(t, input, capacity, alpha).Cost
}

// BestStaticCache returns the optimal static (fetch-once) cache of the
// given capacity for the input, with its total cost. It solves the
// offline tree-sparsity knapsack in O(|T|·capacity).
func BestStaticCache(t *Tree, input Trace, capacity int, alpha int64) ([]NodeID, int64) {
	r := opt.Static(t, input, capacity, alpha)
	return r.Set, r.Cost
}
