package treecache_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/tree"
	"repro/treecache"
)

func TestQuickstartFlow(t *testing.T) {
	tr := treecache.Path(4)
	c := treecache.New(tr, treecache.Options{Alpha: 2, Capacity: 4})
	// α requests to the leaf saturate the singleton cap {3}.
	c.Request(treecache.Pos(3))
	if c.Cached(3) {
		t.Fatal("cached too early")
	}
	c.Request(treecache.Pos(3))
	if !c.Cached(3) {
		t.Fatal("leaf should be cached after α paid requests")
	}
	if c.CacheLen() != 1 || c.Cost() != 2+2*1 {
		t.Fatalf("len=%d cost=%d", c.CacheLen(), c.Cost())
	}
	c.Reset()
	if c.Cost() != 0 || c.CacheLen() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCacheImplementsAlgorithm(t *testing.T) {
	var _ treecache.Algorithm = treecache.New(treecache.Star(3), treecache.Options{Alpha: 2, Capacity: 2})
}

func TestRunAndBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := tree.RandomShape(rng, 15)
	input := trace.RandomMixed(rng, tr, 500)
	tc := treecache.New(tr, treecache.Options{Alpha: 4, Capacity: 8})
	lru := treecache.NewEagerBaseline(tr, 4, 8, treecache.LRU, false)
	none := treecache.NewNoCache(4)
	for _, a := range []treecache.Algorithm{tc, lru, none} {
		res := treecache.Run(a, input)
		if res.Rounds != 500 {
			t.Fatalf("%s: rounds = %d", res.Algorithm, res.Rounds)
		}
	}
}

func TestOfflineHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := tree.RandomShape(rng, 8)
	input := trace.RandomMixed(rng, tr, 60)
	optCost := treecache.OfflineOptimum(tr, input, 4, 2)
	set, staticCost := treecache.BestStaticCache(tr, input, 4, 2)
	if staticCost < optCost {
		t.Fatalf("static %d beats exact optimum %d", staticCost, optCost)
	}
	if len(set) > 4 {
		t.Fatalf("static set too large: %v", set)
	}
	tc := treecache.New(tr, treecache.Options{Alpha: 2, Capacity: 4})
	res := treecache.Run(tc, input)
	if res.Total() < optCost {
		t.Fatalf("online TC (%d) beats the offline optimum (%d)", res.Total(), optCost)
	}
}

// ExampleNew demonstrates the quickstart flow from the package comment.
func ExampleNew() {
	t := treecache.Path(8)
	c := treecache.New(t, treecache.Options{Alpha: 4, Capacity: 6})
	for i := 0; i < 4; i++ {
		c.Request(treecache.Pos(7)) // four misses saturate the leaf
	}
	fmt.Println(c.Cached(7), c.Cost())
	// Output: true 8
}
