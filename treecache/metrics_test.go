package treecache_test

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/treecache"
)

// TestEngineObservability exercises the facade's observability
// surface: latency histograms, the competitive-ratio monitor, and the
// /metrics + /healthz endpoints, end to end through NewEngine.
func TestEngineObservability(t *testing.T) {
	trees := []*treecache.Tree{
		treecache.CompleteKary(15, 2), // small: exact-DP ratio yardstick
		treecache.CompleteKary(1023, 2),
	}
	e := treecache.NewEngine(trees, treecache.Options{Alpha: 4, Capacity: 5}, treecache.EngineOptions{
		RatioWindow: 128,
	})
	defer e.Close()

	rng := rand.New(rand.NewSource(9))
	for s := range trees {
		var batch []treecache.Request
		for i := 0; i < 1024; i++ {
			v := treecache.NodeID(rng.Intn(trees[s].Len()))
			if rng.Intn(4) == 0 {
				batch = append(batch, treecache.Neg(v))
			} else {
				batch = append(batch, treecache.Pos(v))
			}
		}
		if err := e.SubmitTrace(s, batch); err != nil {
			t.Fatal(err)
		}
	}
	e.Drain()

	for s := range trees {
		h := e.Histogram(s)
		if h.Count() != 1024 {
			t.Fatalf("shard %d histogram count = %d, want 1024", s, h.Count())
		}
		if h.Quantile(0.999) < h.Quantile(0.5) {
			t.Fatalf("shard %d p999 < p50", s)
		}
		m := e.RatioMonitor(s)
		if m == nil {
			t.Fatalf("shard %d has no ratio monitor", s)
		}
		ratio, ok := m.Ratio()
		if !ok || ratio <= 0 {
			t.Fatalf("shard %d ratio = %v ok=%v", s, ratio, ok)
		}
	}

	st := e.Stats()
	if st.Latency.Count() != 2048 {
		t.Fatalf("fleet latency count = %d, want 2048", st.Latency.Count())
	}
	if st.MaxCache == 0 || st.MaxBatch == 0 {
		t.Fatalf("fleet maxima not aggregated: %+v", st)
	}

	rec := httptest.NewRecorder()
	e.MetricsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`treecache_request_latency_quantile_ns{shard="0",algorithm="TC",quantile="0.999"}`,
		`treecache_competitive_ratio{shard="1",algorithm="TC"}`,
		`treecache_queue_depth{shard="0",algorithm="TC"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
	rec = httptest.NewRecorder()
	e.MetricsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz status %d", rec.Code)
	}

	// RatioWindow 0 attaches nothing.
	plain := treecache.NewEngine(trees[:1], treecache.Options{Alpha: 4, Capacity: 5}, treecache.EngineOptions{})
	defer plain.Close()
	if plain.RatioMonitor(0) != nil {
		t.Fatal("monitor attached without RatioWindow")
	}
}
