package treecache_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/treecache"
)

// TestPublicEngineFlow drives the public fleet surface end to end: a
// multi-tenant workload over mixed tree shapes, served concurrently by
// the sharded engine, must cost exactly what per-tenant sequential
// Cache instances cost, and the multi-tenant text format must round-
// trip the workload.
func TestPublicEngineFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trees := []*treecache.Tree{
		treecache.CompleteKary(63, 2),
		treecache.Star(40),
		treecache.Path(24),
	}
	opts := treecache.Options{Alpha: 4, Capacity: 16}
	mt := treecache.MultiTenantWorkload(rng, trees, treecache.MultiTenantConfig{
		Rounds: 15000, TenantS: 1.1, NodeS: 1.0, NegFrac: 0.25, BurstFrac: 0.05, BurstLen: 4,
	})
	if err := treecache.ValidateMultiTrace(mt, trees); err != nil {
		t.Fatal(err)
	}

	// Text format round-trip.
	var buf bytes.Buffer
	if err := mt.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := treecache.ReadMultiTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(mt) {
		t.Fatalf("round trip length %d, want %d", len(back), len(mt))
	}

	eng := treecache.NewEngine(trees, opts, treecache.EngineOptions{Parallelism: 2})
	if eng.Shards() != len(trees) {
		t.Fatalf("shards = %d", eng.Shards())
	}
	if err := eng.SubmitMulti(back, 256); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	st := eng.Stats()
	defer eng.Close()

	if st.Rounds != int64(len(mt)) {
		t.Fatalf("served %d rounds, want %d", st.Rounds, len(mt))
	}
	for i, split := range mt.Split(len(trees)) {
		seq := treecache.New(trees[i], opts)
		for _, r := range split {
			seq.Request(r)
		}
		ss := st.Shards[i]
		if ss.Total() != seq.Cost() {
			t.Fatalf("shard %d cost %d, sequential cache cost %d", i, ss.Total(), seq.Cost())
		}
		got := eng.Shard(i).Members()
		want := seq.Members()
		if len(got) != len(want) {
			t.Fatalf("shard %d cache size %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("shard %d cache differs at %d: %v vs %v", i, j, got, want)
			}
		}
	}

	// Single-shard Submit variadic path.
	if err := eng.Submit(0, treecache.Pos(1), treecache.Neg(1)); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if got := eng.Stats().Rounds; got != int64(len(mt))+2 {
		t.Fatalf("rounds after extra submit: %d", got)
	}
}
