package treecache_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/treecache"
)

// TestPublicEngineFlow drives the public fleet surface end to end: a
// multi-tenant workload over mixed tree shapes, served concurrently by
// the sharded engine, must cost exactly what per-tenant sequential
// Cache instances cost, and the multi-tenant text format must round-
// trip the workload.
func TestPublicEngineFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trees := []*treecache.Tree{
		treecache.CompleteKary(63, 2),
		treecache.Star(40),
		treecache.Path(24),
	}
	opts := treecache.Options{Alpha: 4, Capacity: 16}
	mt := treecache.MultiTenantWorkload(rng, trees, treecache.MultiTenantConfig{
		Rounds: 15000, TenantS: 1.1, NodeS: 1.0, NegFrac: 0.25, BurstFrac: 0.05, BurstLen: 4,
	})
	if err := treecache.ValidateMultiTrace(mt, trees); err != nil {
		t.Fatal(err)
	}

	// Text format round-trip.
	var buf bytes.Buffer
	if err := mt.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := treecache.ReadMultiTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(mt) {
		t.Fatalf("round trip length %d, want %d", len(back), len(mt))
	}

	eng := treecache.NewEngine(trees, opts, treecache.EngineOptions{Parallelism: 2})
	if eng.Shards() != len(trees) {
		t.Fatalf("shards = %d", eng.Shards())
	}
	if err := eng.SubmitMulti(back, 256); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	st := eng.Stats()
	defer eng.Close()

	if st.Rounds != int64(len(mt)) {
		t.Fatalf("served %d rounds, want %d", st.Rounds, len(mt))
	}
	for i, split := range mt.Split(len(trees)) {
		seq := treecache.New(trees[i], opts)
		for _, r := range split {
			seq.Request(r)
		}
		ss := st.Shards[i]
		if ss.Total() != seq.Cost() {
			t.Fatalf("shard %d cost %d, sequential cache cost %d", i, ss.Total(), seq.Cost())
		}
		got := eng.Shard(i).Members()
		want := seq.Members()
		if len(got) != len(want) {
			t.Fatalf("shard %d cache size %d, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("shard %d cache differs at %d: %v vs %v", i, j, got, want)
			}
		}
	}

	// Single-shard Submit variadic path.
	if err := eng.Submit(0, treecache.Pos(1), treecache.Neg(1)); err != nil {
		t.Fatal(err)
	}
	eng.Drain()
	if got := eng.Stats().Rounds; got != int64(len(mt))+2 {
		t.Fatalf("rounds after extra submit: %d", got)
	}
}

// TestPublicSnapshotFlow drives the public crash-safety surface: a
// Cache snapshot restores to an equivalent instance (both in place and
// as a fresh Cache), corrupted bytes are rejected without damage, and
// a supervised fleet exposes its checkpoint counters.
func TestPublicSnapshotFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr := treecache.CompleteKary(31, 2)
	c := treecache.New(tr, treecache.Options{Alpha: 4, Capacity: 8})
	for i := 0; i < 500; i++ {
		v := treecache.NodeID(rng.Intn(31))
		if rng.Intn(3) == 0 {
			c.Request(treecache.Neg(v))
		} else {
			c.Request(treecache.Pos(v))
		}
	}
	blob, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifySnapshot(blob); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x20
	if err := c.VerifySnapshot(bad); err == nil {
		t.Fatal("corrupted snapshot verified")
	}
	if err := c.Restore(bad); err == nil {
		t.Fatal("corrupted snapshot restored")
	}

	c2, err := treecache.RestoreCache(blob)
	if err != nil {
		t.Fatal(err)
	}
	c3 := treecache.New(tr, treecache.Options{Alpha: 4, Capacity: 8})
	if err := c3.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for _, other := range []*treecache.Cache{c2, c3} {
		if other.Ledger() != c.Ledger() || other.CacheLen() != c.CacheLen() {
			t.Fatal("restored cache diverges from the captured one")
		}
	}
	// The three instances must stay in lockstep on further traffic.
	for i := 0; i < 300; i++ {
		r := treecache.Pos(treecache.NodeID(rng.Intn(31)))
		if rng.Intn(3) == 0 {
			r = treecache.Neg(r.Node)
		}
		s0, m0 := c.Request(r)
		for _, other := range []*treecache.Cache{c2, c3} {
			if s, m := other.Request(r); s != s0 || m != m0 {
				t.Fatalf("restored cache diverged at round %d", i)
			}
		}
	}

	trees := []*treecache.Tree{treecache.CompleteKary(31, 2), treecache.Path(16)}
	e := treecache.NewEngine(trees, treecache.Options{Alpha: 4, Capacity: 8},
		treecache.EngineOptions{QueueLen: 4, CheckpointEvery: 2})
	defer e.Close()
	if !e.Supervised(0) || !e.Supervised(1) {
		t.Fatal("snapshot-capable fleet not supervised")
	}
	if err := e.TrySubmit(0, treecache.Pos(3), treecache.Pos(4)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitCtx(context.Background(), 1, treecache.Trace{treecache.Pos(2)}); err != nil {
		t.Fatal(err)
	}
	e.Drain()
	st := e.Stats()
	if st.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", st.Rounds)
	}
	if st.Checkpoints == 0 {
		t.Fatal("supervised fleet took no checkpoints")
	}
}
