package treecache

import (
	"context"
	"net/http"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/opt"
	"repro/internal/trace"
	"repro/internal/treepar"
)

// TenantRequest tags a Request with the tenant (engine shard) whose
// tree it targets.
type TenantRequest = trace.TenantRequest

// MultiTrace is a multi-tenant request sequence; see
// internal/trace.MultiTrace for the ordering guarantees and the
// "<tenant>:<sign><node>" text format (ReadMultiTrace / Write).
type MultiTrace = trace.MultiTrace

// ReadMultiTrace parses the multi-tenant text format.
var ReadMultiTrace = trace.ReadMulti

// MultiTenantConfig parameterises the fleet workload generator.
type MultiTenantConfig = trace.MultiTenantConfig

// MultiTenantWorkload generates a Zipf-skewed multi-tenant workload
// with correlated bursts; see internal/trace.MultiTenant.
var MultiTenantWorkload = trace.MultiTenant

// FIBUpdateReplay generates a fleet-wide FIB-update replay; see
// internal/trace.FIBUpdateReplay.
var FIBUpdateReplay = trace.FIBUpdateReplay

// EngineStats aggregates a fleet's per-shard cost ledgers and latency
// counters; see internal/engine.Stats.
type EngineStats = engine.Stats

// ShardStats is one shard's snapshot; see internal/engine.ShardStats.
type ShardStats = engine.ShardStats

// LatencyHistogram is a zero-allocation fixed-bucket (log-linear)
// latency histogram; see internal/metrics.Histogram. Each shard
// records its amortized per-request service latency into one,
// published with every stats snapshot; query quantiles with
// Quantile(0.5), Quantile(0.99), Quantile(0.999).
type LatencyHistogram = metrics.Histogram

// RatioMonitor is the online competitive-ratio monitor: it streams the
// cost ledger against the offline optimum (internal/opt) on sliding
// windows and exposes the live ratio — the paper's guarantee as an SLO
// gauge. See internal/metrics.RatioMonitor for the windowed-estimate
// caveat.
type RatioMonitor = metrics.RatioMonitor

// EngineOptions tunes the sharded serving engine beyond the per-shard
// algorithm options.
type EngineOptions struct {
	// QueueLen is the per-shard batch queue capacity (default 64);
	// Submit blocks while a shard's queue is full.
	QueueLen int
	// Parallelism caps how many shards serve concurrently (0 = one
	// goroutine per shard, no extra cap).
	Parallelism int
	// CheckpointEvery sets the supervision checkpoint cadence in
	// served messages: each shard snapshots its cache every that many
	// messages (and at Drain points), journals the messages in
	// between, and on a panic restores the last checkpoint and replays
	// the journal — no accepted batch lost or double-served. 0 uses
	// the queue depth as the cadence; a negative value disables
	// supervision (a shard panic then propagates and crashes the
	// process, the pre-supervision behaviour).
	CheckpointEvery int
	// SubtreeShards, when ≥ 2, turns on intra-tree parallelism per
	// shard: each tenant's tree is partitioned into that many subtree
	// shards cut at heavy-path heads and served by concurrent owner
	// goroutines, with cross-boundary effects exchanged as batched
	// frontier messages at wave barriers (internal/treepar). Results
	// are exactly the sequential ones — same costs, counters and cache
	// contents. Requires Observer == nil; shards whose tree is too
	// small to partition (pure paths, tiny trees) stay sequential, and
	// waves only dispatch while runtime.GOMAXPROCS(0) ≥ 2 (on a single
	// processor the partitioned instance passes through to the batched
	// sequential path — the barrier overhead cannot be repaid).
	SubtreeShards int
	// RatioWindow, when > 0, attaches an online competitive-ratio
	// monitor to every shard: each monitor accumulates the shard's
	// request stream plus exact cost ledger deltas and, every
	// RatioWindow requests, computes the offline optimum of the window
	// (the exact DP for trees small enough for it, the best-static
	// knapsack otherwise) and updates the live ratio gauge exported by
	// MetricsHandler. Monitoring assumes a static topology: after
	// ApplyTopology mutations the monitor's tree snapshot goes stale
	// and its windows turn into approximations against the original
	// tree.
	RatioWindow int
}

// Engine error sentinels: ErrEngineClosed reports a Submit/Drain after
// Close; ErrEngineOverloaded reports a TrySubmit against a full shard
// queue (apply backpressure and retry, or drop).
var (
	ErrEngineClosed     = engine.ErrClosed
	ErrEngineOverloaded = engine.ErrOverloaded
)

// Engine is a goroutine-safe fleet of independent caches — one TC
// instance per tree/tenant, each confined to its own worker goroutine
// (single-writer shards, lock-free serve path). Submit routes batches
// to shards; Drain waits for completion; Stats aggregates the fleet.
// Every dispatched batch is served through Cache.ServeBatch, so
// correlated bursts inside a batch are coalesced instead of paying the
// full per-request decision cost (Submit, SubmitTrace and SubmitMulti
// all route through the same batched path).
type Engine struct {
	e      *engine.Engine
	caches []*Cache
}

// NewEngine builds a fleet serving trees[i] on shard i, each with a
// fresh TC instance configured by o. It panics on invalid options,
// like New.
//
// Observer caveat: o.Observer, when non-nil, is shared by every shard
// and invoked from all shard worker goroutines — it must be safe for
// concurrent use. A non-thread-safe observer (e.g. the analysis
// recorder) is only sound with Parallelism: 1, which serializes the
// workers with proper happens-before edges (the token channel).
func NewEngine(trees []*Tree, o Options, eo EngineOptions) *Engine {
	caches := make([]*Cache, len(trees))
	var monitors []*metrics.RatioMonitor
	if eo.RatioWindow > 0 {
		monitors = make([]*metrics.RatioMonitor, len(trees))
		for i, t := range trees {
			monitors[i] = metrics.NewRatioMonitor(metrics.RatioConfig{
				Tree:     t,
				Alpha:    o.Alpha,
				Capacity: o.Capacity,
				Window:   eo.RatioWindow,
				Exact:    t.Len() <= opt.MaxExactNodes,
			})
		}
	}
	e := engine.New(engine.Config{
		Shards: len(trees),
		NewShard: func(i int) engine.Algorithm {
			caches[i] = &Cache{tc: core.NewMutable(trees[i], core.MutableConfig{
				Config: core.Config{Alpha: o.Alpha, Capacity: o.Capacity, Observer: o.Observer},
			})}
			return caches[i]
		},
		QueueLen:        eo.QueueLen,
		Parallelism:     eo.Parallelism,
		CheckpointEvery: eo.CheckpointEvery,
		SubtreeShards:   eo.SubtreeShards,
		RatioMonitors:   monitors,
	})
	return &Engine{e: e, caches: caches}
}

// PartitionSubtrees makes Cache satisfy engine.SubtreePartitioner: it
// returns an intra-tree parallel instance serving this cache's tree
// with k subtree-shard owner goroutines (internal/treepar), or nil
// when the cache cannot be partitioned (k < 2, or an observer is
// attached — observer callbacks assume the sequential serve order).
// The engine calls this when EngineOptions.SubtreeShards ≥ 2; after
// partitioning, serve only through the returned instance (inspection
// through the Cache stays valid while the engine is quiescent).
func (c *Cache) PartitionSubtrees(k int) engine.Algorithm {
	if k < 2 || c.tc.Observed() {
		return nil
	}
	return treepar.NewMutable(c.tc, treepar.Options{Shards: k})
}

// Supervised reports whether shard i runs under crash supervision
// (checkpoint + journal replay). Cache is snapshot-capable, so this is
// true unless EngineOptions.CheckpointEvery was negative.
func (f *Engine) Supervised(i int) bool { return f.e.Supervised(i) }

// ApplyTopology enqueues rule announce/withdraw mutations for one
// shard, serialized through the shard's single-writer worker: they
// take effect after every batch submitted before the call and before
// every batch submitted after it. Application errors are counted in
// the shard's TopoErrs stat. SubmitMulti routes mutation events of a
// MultiTrace through the same path in per-tenant order.
func (f *Engine) ApplyTopology(shard int, muts []Mutation) error {
	return f.e.ApplyTopology(shard, muts)
}

// Shards returns the fleet size.
func (f *Engine) Shards() int { return f.e.Shards() }

// Submit enqueues requests for one shard; per-shard order is the
// submission order. It blocks while the shard's queue is full and
// returns an error for an unknown shard or a closed engine.
func (f *Engine) Submit(shard int, reqs ...Request) error {
	return f.e.Submit(shard, trace.Trace(reqs))
}

// SubmitTrace enqueues a whole trace as one batch for one shard,
// served via the shard Cache's batched (run-coalescing) path. The
// trace is retained until served; do not mutate it before Drain.
func (f *Engine) SubmitTrace(shard int, tr Trace) error {
	return f.e.Submit(shard, tr)
}

// TrySubmit enqueues a batch without blocking: if the shard's queue is
// full it returns ErrEngineOverloaded immediately — the bounded-
// backpressure submit for callers that must not stall (drop, shed or
// retry on their own schedule).
func (f *Engine) TrySubmit(shard int, reqs ...Request) error {
	return f.e.TrySubmit(shard, trace.Trace(reqs))
}

// SubmitCtx enqueues a batch like Submit but gives up when ctx is
// cancelled or its deadline passes, returning the context's error.
func (f *Engine) SubmitCtx(ctx context.Context, shard int, tr Trace) error {
	return f.e.SubmitCtx(ctx, shard, tr)
}

// SubmitMulti routes a multi-tenant trace across the fleet (tenant i →
// shard i) in chunks of up to batchLen requests (default 1024).
func (f *Engine) SubmitMulti(mt MultiTrace, batchLen int) error {
	return f.e.SubmitMulti(mt, batchLen)
}

// Drain blocks until everything submitted before the call is served.
func (f *Engine) Drain() { f.e.Drain() }

// Stats snapshots the fleet counters; exact after Drain.
func (f *Engine) Stats() EngineStats { return f.e.Stats() }

// Histogram returns a copy of shard i's request-latency histogram as
// of its last completed batch (zero-valued before the first batch).
func (f *Engine) Histogram(i int) LatencyHistogram { return f.e.Histogram(i) }

// RatioMonitor returns shard i's competitive-ratio monitor, or nil
// when EngineOptions.RatioWindow was 0.
func (f *Engine) RatioMonitor(i int) *RatioMonitor { return f.e.RatioMonitor(i) }

// MetricsHandler returns the Prometheus text-format /metrics endpoint:
// per-shard latency histograms with p50/p99/p999 quantile series, cost
// and throughput counters, queue-depth/topology/restart gauges, and
// the live competitive-ratio gauges when monitors are attached. Safe
// for concurrent use, including against Submit/ApplyTopology/Close.
func (f *Engine) MetricsHandler() http.Handler { return f.e.MetricsHandler() }

// MetricsMux returns a ServeMux serving /metrics and /healthz (200
// while open, 503 after Close), ready for a serving daemon to mount.
func (f *Engine) MetricsMux() *http.ServeMux { return f.e.MetricsMux() }

// Close serves all queued batches and stops the workers. It must not
// race with Submit or Drain.
func (f *Engine) Close() { f.e.Close() }

// Shard returns shard i's Cache for inspection. The cache is owned by
// the shard's worker: only touch it while the engine is quiescent
// (after Drain with no in-flight Submit, or after Close).
func (f *Engine) Shard(i int) *Cache { return f.caches[i] }

// ValidateMultiTrace checks a multi-tenant trace against the fleet's
// trees ([]*Tree and []*tree.Tree are identical via the alias).
func ValidateMultiTrace(mt MultiTrace, trees []*Tree) error {
	return mt.Validate(trees)
}
